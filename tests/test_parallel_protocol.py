"""Unit tests of the master/slave protocol state machines and the bucket
partitioner — no engine involved, messages are passed by hand."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import AcceptanceCriteria, PairAligner
from repro.pairs import OnDemandPairGenerator, Pair, SaPairGenerator
from repro.parallel import MasterLogic, MasterMsg, SlaveLogic, SlaveMsg, assign_buckets
from repro.parallel.cost_model import CostModel
from repro.sequence import EstCollection
from repro.suffix import SuffixArrayGst


class TestAssignBuckets:
    def test_all_buckets_assigned_once(self):
        ranges = [(i, i * 10, i * 10 + 5 + i) for i in range(7)]
        asg = assign_buckets(ranges, 3)
        flat = [r for per in asg.per_processor for r in per]
        assert sorted(flat) == sorted(ranges)
        assert asg.n_processors == 3

    def test_loads_match_contents(self):
        ranges = [(0, 0, 10), (1, 10, 14), (2, 14, 15)]
        asg = assign_buckets(ranges, 2)
        for k in range(2):
            assert asg.loads[k] == sum(hi - lo for _key, lo, hi in asg.per_processor[k])

    def test_lpt_known_placement(self):
        # Sizes 5,4,3,3,3 on 2 processors: LPT places 5 | 4,3 | 3 | 3 ->
        # loads 8 and 10 (greedy, not optimal 9/9 — Graham bound applies).
        ranges = [(i, 0, s) for i, s in enumerate([5, 4, 3, 3, 3])]
        asg = assign_buckets(ranges, 2)
        assert sorted(asg.loads) == [8, 10]
        assert asg.imbalance == pytest.approx(10 / 9)

    @given(
        st.lists(st.integers(1, 50), min_size=0, max_size=30),
        st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_lpt_within_greedy_bound(self, sizes, p):
        """List-scheduling bound: makespan <= total/p + max size (a machine
        receives a bucket only while it is least-loaded)."""
        pos = 0
        ranges = []
        for i, s in enumerate(sizes):
            ranges.append((i, pos, pos + s))
            pos += s
        asg = assign_buckets(ranges, p)
        if not sizes:
            assert asg.loads == [0] * p
            return
        assert max(asg.loads) <= sum(sizes) / p + max(sizes) + 1e-9

    def test_ranges_kept_in_rank_order(self):
        ranges = [(0, 50, 60), (1, 0, 10), (2, 20, 30)]
        asg = assign_buckets(ranges, 1)
        los = [lo for _k, lo, _hi in asg.per_processor[0]]
        assert los == sorted(los)

    def test_zero_processors_rejected(self):
        with pytest.raises(ValueError):
            assign_buckets([], 0)


def _mk_pair(i, j, length=12):
    return Pair(length, 2 * i, 0, 2 * j, 0)


def _msg(slave_id, pairs=(), results=(), exhausted=False, pending=False):
    return SlaveMsg(
        slave_id=slave_id,
        results=tuple(results),
        pairs=tuple(pairs),
        exhausted=exhausted,
        has_pending_results=pending,
    )


class TestMasterLogic:
    def test_pair_selection_filters_clustered(self):
        m = MasterLogic(n_ests=6, n_slaves=2, batchsize=4, workbuf_capacity=100)
        m.manager.seed_union(0, 1)
        reply = m.on_message(_msg(0, pairs=[_mk_pair(0, 1), _mk_pair(2, 3)]))
        assert m.stats.pairs_offered == 2
        assert m.stats.pairs_admitted == 1  # (0,1) already co-clustered
        assert reply is not None and len(reply.work) == 1

    def test_results_merge_clusters(self):
        from repro.align.scoring import AlignmentResult, OverlapPattern

        m = MasterLogic(n_ests=4, n_slaves=1, batchsize=4, workbuf_capacity=100)
        res = AlignmentResult(24.0, 0, 12, 0, 12, OverlapPattern.A_CONTAINS_B, 0)
        m.on_message(_msg(0, results=[(_mk_pair(0, 2), res, True), (_mk_pair(1, 3), res, False)]))
        assert m.manager.same_cluster(0, 2)
        assert not m.manager.same_cluster(1, 3)
        assert m.stats.results_accepted == 1

    def test_request_formula_uses_alpha_delta(self):
        m = MasterLogic(n_ests=100, n_slaves=4, batchsize=10, workbuf_capacity=10_000)
        # Slave offers 8 pairs, 4 admitted -> alpha=2, delta=1 -> E=2*10=20.
        pairs = [_mk_pair(2 * k, 2 * k + 1) for k in range(4)]
        dups = [_mk_pair(50, 51)] * 4
        m.manager.seed_union(50, 51)
        reply = m.on_message(_msg(0, pairs=pairs + dups))
        assert reply.request == 20

    def test_request_capped_by_nfree_over_p(self):
        m = MasterLogic(n_ests=100, n_slaves=4, batchsize=10, workbuf_capacity=40)
        pairs = [_mk_pair(2 * k, 2 * k + 1) for k in range(8)]
        reply = m.on_message(_msg(0, pairs=pairs))
        # After W=8-... workbuf drained by W; nfree/p = (40-0)/4 = 10 cap.
        assert reply.request <= 10

    def test_passive_slave_gets_no_request(self):
        m = MasterLogic(n_ests=10, n_slaves=2, batchsize=5, workbuf_capacity=50)
        reply = m.on_message(_msg(0, exhausted=True, pending=True))
        # No work available, no request: the reply is withheld (wait queue).
        assert reply is None
        assert 0 in m.waiting

    def test_wait_queue_drained_when_work_appears(self):
        m = MasterLogic(n_ests=20, n_slaves=2, batchsize=2, workbuf_capacity=50)
        assert m.on_message(_msg(0, exhausted=True)) is None
        # Slave 1 brings more pairs than one batch: after its own W=2, the
        # surplus revives the wait-queued slave 0.
        pairs = [_mk_pair(2 * k, 2 * k + 1) for k in range(4)]
        m.on_message(_msg(1, pairs=pairs, exhausted=True))
        drained = m.drain_wait_queue()
        assert any(sid == 0 and msg.work for sid, msg in drained)

    def test_global_termination_stops_everyone(self):
        m = MasterLogic(n_ests=10, n_slaves=2, batchsize=5, workbuf_capacity=50)
        r0 = m.on_message(_msg(0, exhausted=True))
        assert r0 is None
        r1 = m.on_message(_msg(1, exhausted=True))
        assert r1 is not None and r1.stop
        drained = dict(m.drain_wait_queue())
        assert 0 in drained and drained[0].stop
        assert m.finished()

    def test_pending_results_elicited_before_stop(self):
        m = MasterLogic(n_ests=10, n_slaves=1, batchsize=5, workbuf_capacity=50)
        r = m.on_message(_msg(0, exhausted=True, pending=True))
        # Slave still holds results: master must not stop it, and since
        # there is nothing to send, it parks... then the drain sends an
        # empty-work elicitation (all slaves passive).
        assert r is None
        drained = dict(m.drain_wait_queue())
        assert not drained[0].stop
        # Final message with the pending results cleared:
        r2 = m.on_message(_msg(0, exhausted=True, pending=False))
        assert r2 is not None and r2.stop
        assert m.finished()

    def test_needs_at_least_one_slave(self):
        with pytest.raises(ValueError):
            MasterLogic(n_ests=5, n_slaves=0, batchsize=5, workbuf_capacity=10)


class TestSlaveLogic:
    def _make(self, n_pairs=300, batchsize=10):
        col = EstCollection.from_strings(
            ["ACGTACGTACGTACGTTTTT", "ACGTACGTACGTACGTGGGG", "TTTTACGTACGTACGTACGT"]
        )
        gst = SuffixArrayGst.build(col)
        gen = OnDemandPairGenerator(SaPairGenerator(gst, psi=10).pairs())
        aligner = PairAligner(col, criteria=AcceptanceCriteria(0.8, 10))
        return SlaveLogic(
            slave_id=0, generator=gen, aligner=aligner,
            batchsize=batchsize, pairbuf_capacity=50,
        )

    def test_bootstrap_three_portions(self):
        slave = self._make(batchsize=3)
        msg = slave.bootstrap()
        assert msg.n_results <= 3  # portion 1 aligned
        assert msg.n_pairs <= 3  # portion 3 shipped
        assert len(slave.nextwork) <= 3  # portion 2 retained
        assert msg.has_pending_results == bool(slave.nextwork)

    def test_step_reports_previous_work(self):
        slave = self._make(batchsize=2)
        slave.bootstrap()
        held = slave.nextwork
        out = slave.step(MasterMsg(work=(), request=5))
        assert out.n_results == len(held)
        assert slave.nextwork == ()

    def test_request_filled_from_generator(self):
        slave = self._make(batchsize=2)
        slave.bootstrap()
        out = slave.step(MasterMsg(work=(), request=4))
        assert out.n_pairs <= 4
        if not slave.generator.exhausted:
            assert out.n_pairs == 4

    def test_stop_with_pending_raises(self):
        slave = self._make(batchsize=2)
        slave.bootstrap()
        if slave.nextwork:
            with pytest.raises(RuntimeError, match="unreported results"):
                slave.step(MasterMsg(work=(), request=0, stop=True))

    def test_clean_stop(self):
        slave = self._make(batchsize=2)
        slave.bootstrap()
        slave.step(MasterMsg(work=(), request=0))  # drains nextwork
        assert slave.step(MasterMsg(work=(), request=0, stop=True)) is None
        assert slave.done

    def test_idle_generate_respects_capacity(self):
        slave = self._make(batchsize=2)
        slave.bootstrap()
        got = slave.idle_generate(10_000)
        assert len(slave.pairbuf) <= slave.pairbuf_capacity
        assert got <= slave.pairbuf_capacity

    def test_finish_before_align_rejected(self):
        slave = self._make()
        with pytest.raises(RuntimeError, match="before align_pending"):
            slave.finish_step(MasterMsg(work=(), request=0))


class TestCostModel:
    def test_message_time_monotone_in_size(self):
        cm = CostModel()
        assert cm.message_time(10, 5) > cm.message_time(1, 1) > cm.comm_latency

    def test_component_costs_scale(self):
        cm = CostModel()
        assert cm.gst_build_time(2000) == pytest.approx(2 * cm.gst_build_time(1000))
        assert cm.alignment_time(1000, 2) > cm.alignment_time(1000, 1)
        assert cm.sort_time(0) == 0.0
        assert cm.sort_time(1) > 0.0
        assert cm.master_time(5, 5) > cm.master_time(0, 0)
