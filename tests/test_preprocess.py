"""Tests for EST preprocessing: poly-A/T trimming, low-complexity
detection, and the end-to-end quality effect on tailed benchmarks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequence import EstCollection, decode, encode
from repro.sequence.preprocess import (
    PreprocessParams,
    low_complexity_mask,
    preprocess_est,
    trim_polya,
)

dna = st.text(alphabet="ACGT", min_size=40, max_size=80).filter(
    # Avoid bodies that themselves end in A-runs or start with T-runs,
    # which would legitimately extend the trim.
    lambda s: not s.endswith("A") and not s.startswith("T")
)


class TestTrimPolya:
    def test_clean_tail_removed(self):
        read = encode("ACGTCCGTAGGTCAGT" + "A" * 25)
        trimmed, cut_start, cut_end = trim_polya(read)
        assert decode(trimmed) == "ACGTCCGTAGGTCAGT"
        assert cut_end == 25 and cut_start == 0

    def test_polyt_head_removed(self):
        read = encode("T" * 20 + "ACGTCCGTAGGTCAGT")
        trimmed, cut_start, cut_end = trim_polya(read)
        assert decode(trimmed) == "ACGTCCGTAGGTCAGT"
        assert cut_start == 20 and cut_end == 0

    def test_impure_tail_still_trimmed(self):
        # 2 errors inside a 28bp tail: under the 20% impurity budget.
        tail = list("A" * 28)
        tail[9] = "G"
        tail[19] = "C"
        read = encode("CGCGTATAGCGCATCG" + "".join(tail))
        trimmed, _s, cut_end = trim_polya(read)
        assert cut_end >= 26

    def test_short_run_kept(self):
        read = encode("ACGTCCGTAGGTC" + "A" * 5)  # below tail_min_run
        trimmed, _s, cut_end = trim_polya(read)
        assert cut_end == 0 and len(trimmed) == len(read)

    def test_no_tail_untouched(self):
        read = encode("ACGTCCGTAGGTCAGTCCGT")
        trimmed, cut_start, cut_end = trim_polya(read)
        assert np.array_equal(trimmed, read)
        assert cut_start == cut_end == 0

    @given(dna, st.integers(10, 40))
    @settings(max_examples=50, deadline=None)
    def test_tail_always_removed_exactly(self, body, tail_len):
        read = encode(body + "A" * tail_len)
        trimmed, _s, cut_end = trim_polya(read)
        assert cut_end >= tail_len
        assert decode(trimmed) == body[: len(body) - (cut_end - tail_len)]

    @given(dna)
    @settings(max_examples=30, deadline=None)
    def test_idempotent(self, body):
        read = encode(body + "A" * 20)
        once, _s1, _e1 = trim_polya(read)
        twice, s2, e2 = trim_polya(once)
        assert np.array_equal(once, twice)


class TestPreprocessEst:
    def test_keeps_good_read(self):
        read = encode("ACGTCCGTAGGTCAGTCCGTACGTCCGTAGGTCAGTCCGT" + "A" * 15)
        cleaned, report = preprocess_est(read)
        assert report.kept and cleaned is not None
        assert report.trimmed_end == 15

    def test_rejects_too_short_after_trim(self):
        read = encode("ACGTCCGTAG" + "A" * 60)
        cleaned, report = preprocess_est(read, PreprocessParams(min_length=40))
        assert cleaned is None and not report.kept
        assert "shorter" in report.reason

    def test_params_validation(self):
        with pytest.raises(ValueError):
            PreprocessParams(tail_max_impurity=0.9)
        with pytest.raises(ValueError):
            PreprocessParams(min_length=0)


class TestLowComplexity:
    def test_mononucleotide_run_flagged(self):
        mask = low_complexity_mask(encode("ACGTCCGTAGGTCAGT" + "A" * 30 + "CGTACGGATC"))
        assert mask[20:40].any()

    def test_dinucleotide_repeat_flagged(self):
        mask = low_complexity_mask(encode("AT" * 20))
        assert mask.all() or mask[:30].all()

    def test_complex_sequence_clean(self):
        rng = np.random.default_rng(3)
        seq = rng.integers(0, 4, 200).astype(np.uint8)
        mask = low_complexity_mask(seq)
        assert mask.mean() < 0.2

    def test_short_input(self):
        assert not low_complexity_mask(encode("AC")).any()


class TestPolyaEndToEnd:
    """The full-circle test: tailed benchmarks break clustering quality;
    preprocessing restores it."""

    def _benchmark(self):
        from repro.simulate import BenchmarkParams, make_benchmark

        small = BenchmarkParams.small(n_genes=8, mean_ests_per_gene=8)
        params = BenchmarkParams(
            n_genes=small.n_genes,
            mean_ests_per_gene=small.mean_ests_per_gene,
            read_params=small.read_params,
            n_exons_range=small.n_exons_range,
            exon_len_range=small.exon_len_range,
            polya_tail_length=35,
        )
        return make_benchmark(params, rng=9)

    def test_tails_create_false_pairs_and_trimming_removes_them(self):
        from repro.core import ClusteringConfig, PaceClusterer
        from repro.metrics import assess_clustering

        bench = self._benchmark()
        cfg = ClusteringConfig.small_reads()
        truth = bench.true_clusters()

        raw = PaceClusterer(cfg).cluster(bench.collection)
        q_raw = assess_clustering(raw.clusters, truth, bench.n_ests)

        cleaned = []
        for i in range(bench.n_ests):
            c, report = preprocess_est(bench.collection.est(i).copy())
            assert report.kept, "benchmark reads should survive trimming"
            cleaned.append(c)
        trimmed_result = PaceClusterer(cfg).cluster(EstCollection(cleaned))
        q_trim = assess_clustering(trimmed_result.clusters, truth, bench.n_ests)

        # Tails are shared across genes: untrimmed runs generate far more
        # (junk) promising pairs and risk false merges.
        assert raw.counters.pairs_generated > 1.3 * trimmed_result.counters.pairs_generated
        assert q_trim.ov <= q_raw.ov
        assert q_trim.cc >= q_raw.cc - 0.5
