"""Batched alignment engine: equivalence with the per-pair oracle.

The whole contract of :class:`repro.align.batch.BatchPairAligner` is that
it is a pure performance layer: for any batch of promising pairs it must
return exactly the ``(AlignmentResult, accepted)`` decisions the per-pair
:class:`repro.align.extend.PairAligner` produces — bitwise-equal scores
included — while doing the DP in vectorised shape groups.  These tests pin
that property down, with hypothesis driving random collections, random
(possibly bogus-seeded) pair batches, and random group sizes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import (
    BandedWorkspace,
    BatchPairAligner,
    PairAligner,
    ScoringParams,
    extend_overlap,
    extend_overlap_group,
    make_aligner,
)
from repro.core.config import ClusteringConfig
from repro.pairs.pair import Pair
from repro.sequence import EstCollection
from repro.telemetry import Telemetry

dna = st.text(alphabet="ACGT", min_size=5, max_size=60)


@st.composite
def collection_and_batch(draw):
    """A small collection plus a random batch of well-formed pairs.

    The seed substrings need not actually match — neither aligner inspects
    them — so offsets and lengths are only constrained to stay in bounds.
    """
    n_ests = draw(st.integers(2, 5))
    col = EstCollection.from_strings([draw(dna) for _ in range(n_ests)])
    pairs = []
    for _ in range(draw(st.integers(0, 12))):
        est_a = draw(st.integers(0, n_ests - 2))
        est_b = draw(st.integers(est_a + 1, n_ests - 1))
        string_a = 2 * est_a
        string_b = 2 * est_b + draw(st.integers(0, 1))
        la, lb = col.length(string_a), col.length(string_b)
        length = draw(st.integers(1, min(la, lb)))
        off_a = draw(st.integers(0, la - length))
        off_b = draw(st.integers(0, lb - length))
        pairs.append(Pair(length, string_a, off_a, string_b, off_b))
    return col, pairs


class TestGroupKernel:
    def test_matches_scalar_kernel_bitwise(self):
        rng = np.random.default_rng(11)
        params = ScoringParams()
        ws = BandedWorkspace()
        for _ in range(50):
            g = int(rng.integers(1, 24))
            xs = [rng.integers(0, 4, rng.integers(1, 90)).astype(np.int8) for _ in range(g)]
            ys = [rng.integers(0, 4, rng.integers(1, 90)).astype(np.int8) for _ in range(g)]
            bands = rng.integers(0, 16, g)
            scores, cx, cy, cells = extend_overlap_group(
                xs, ys, bands, params, workspace=ws
            )
            for k in range(g):
                ref = extend_overlap(xs[k], ys[k], params, int(bands[k]))
                assert (
                    float(scores[k]),
                    int(cx[k]),
                    int(cy[k]),
                    int(cells[k]),
                ) == tuple(ref)

    def test_empty_group(self):
        scores, cx, cy, cells = extend_overlap_group([], [], [], ScoringParams())
        assert scores.size == cx.size == cy.size == cells.size == 0

    def test_rejects_empty_extensions_and_bad_bands(self):
        params = ScoringParams()
        a = np.array([0, 1], dtype=np.int8)
        with pytest.raises(ValueError):
            extend_overlap_group([a], [np.array([], dtype=np.int8)], [3], params)
        with pytest.raises(ValueError):
            extend_overlap_group([a], [a], [-1], params)
        with pytest.raises(ValueError):
            extend_overlap_group([a, a], [a], [3, 3], params)

    def test_workspace_reuses_buffers(self):
        ws = BandedWorkspace()
        params = ScoringParams()
        a = np.array([0, 1, 2, 3] * 10, dtype=np.int8)
        extend_overlap_group([a], [a], [5], params, workspace=ws)
        assert ws.grows == 1 and ws.reuses == 0
        extend_overlap_group([a[:7]], [a[:9]], [5], params, workspace=ws)
        assert ws.grows == 1 and ws.reuses == 1


class TestBatchAlignerEquivalence:
    @settings(deadline=None, max_examples=60)
    @given(collection_and_batch(), st.integers(1, 16))
    def test_identical_to_per_pair_oracle(self, col_and_batch, group_size):
        col, pairs = col_and_batch
        ref = PairAligner(col)
        bat = BatchPairAligner(col, group_size=group_size)
        expected = [ref.align_and_decide(p) for p in pairs]
        got = bat.align_and_decide_batch(pairs)
        assert got == expected  # scores, spans, patterns, accept/reject
        assert bat.alignments_performed == ref.alignments_performed
        assert bat.dp_cells_total == ref.dp_cells_total
        assert bat.model_cells_total == ref.model_cells_total

    def test_empty_batch(self):
        col = EstCollection.from_strings(["ACGTACGTAC", "TGCATGCATG"])
        bat = BatchPairAligner(col)
        assert bat.align_and_decide_batch([]) == []
        assert bat.alignments_performed == 0

    def test_single_pair_batch(self):
        col = EstCollection.from_strings(["ACGTACGTACGT", "GTACGTACGTAA"])
        pair = Pair(8, 0, 2, 2, 0)
        expected = PairAligner(col).align_and_decide(pair)
        assert BatchPairAligner(col).align_and_decide_batch([pair]) == [expected]

    def test_seed_at_string_edges(self):
        # Seeds flush against either string end make one extension empty —
        # the slot the kernel never sees.
        col = EstCollection.from_strings(["ACGTACGTAC", "ACGTACGTAC"])
        edge_pairs = [
            Pair(10, 0, 0, 2, 0),  # both extensions empty
            Pair(5, 0, 0, 2, 5),  # left empty for a, right empty for b
            Pair(5, 0, 5, 2, 0),
        ]
        ref = PairAligner(col)
        expected = [ref.align_and_decide(p) for p in edge_pairs]
        assert BatchPairAligner(col).align_and_decide_batch(edge_pairs) == expected

    def test_base_class_batch_method_loops(self):
        col = EstCollection.from_strings(["ACGTACGTACGT", "GTACGTACGTAA"])
        pairs = [Pair(8, 0, 2, 2, 0), Pair(6, 0, 0, 2, 1)]
        ref = PairAligner(col)
        expected = [PairAligner(col).align_and_decide(p) for p in pairs]
        assert ref.align_and_decide_batch(pairs) == expected

    def test_non_banded_engines_fall_back_to_oracle(self):
        col = EstCollection.from_strings(["ACGTACGTACGT", "GTACGTACGTAA"])
        pairs = [Pair(8, 0, 2, 2, 0)]
        for kwargs in ({"engine": "kdiff"}, {"use_seed_extension": False}):
            expected = [PairAligner(col, **kwargs).align_and_decide(p) for p in pairs]
            assert (
                BatchPairAligner(col, **kwargs).align_and_decide_batch(pairs)
                == expected
            )


class TestTelemetryParity:
    def test_aggregate_metrics_match_per_pair_engine(self):
        rng = np.random.default_rng(3)
        col = EstCollection.from_strings(
            ["".join(rng.choice(list("ACGT"), 70)) for _ in range(4)]
        )
        pairs = [
            Pair(12, 0, 10, 2 * b + strand, 20)
            for b, strand in ((1, 0), (2, 1), (3, 0), (1, 1))
        ]
        tel_ref, tel_bat = Telemetry(), Telemetry()
        for p in pairs:
            PairAligner(col, telemetry=tel_ref).align_and_decide(p)
        BatchPairAligner(
            col, telemetry=tel_bat, group_size=2
        ).align_and_decide_batch(pairs)
        ref_counters = tel_ref.registry.snapshot()["counters"]
        bat_counters = tel_bat.registry.snapshot()["counters"]
        for key in ("align.accepted", "align.rejected"):
            assert ref_counters.get(key, 0) == bat_counters.get(key, 0)
        ref_hists = tel_ref.registry.snapshot()["histograms"]
        bat_hists = tel_bat.registry.snapshot()["histograms"]
        assert ref_hists["align.band_width"] == bat_hists["align.band_width"]
        assert "align.batch_size" in bat_hists
        assert bat_counters.get("align.buffer_reuse", 0) >= 1


class TestMakeAligner:
    def test_selects_engine_from_config(self):
        col = EstCollection.from_strings(["ACGTACGTAC", "TGCATGCATG"])
        per_pair = make_aligner(col, ClusteringConfig())
        assert type(per_pair) is PairAligner
        batched = make_aligner(col, ClusteringConfig(align_batch=32))
        assert isinstance(batched, BatchPairAligner)
        assert batched.group_size == 32

    def test_config_rejects_negative_group(self):
        with pytest.raises(ValueError):
            ClusteringConfig(align_batch=-1)
