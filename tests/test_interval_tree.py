"""Tests for the LCP-interval forest (suffix-tree node recovery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequence import EstCollection
from repro.suffix import build_flat_forest, build_lcp_forest, build_suffix_array
from repro.suffix.lcp import lcp_array

dna_lists = st.lists(st.text(alphabet="ACGT", min_size=1, max_size=25), min_size=1, max_size=4)


def _forest_for(seqs, min_depth=1, lo=0, hi=None):
    text, _ = EstCollection.from_strings(seqs).sa_text()
    sa = build_suffix_array(text)
    return build_lcp_forest(lcp_array(sa), min_depth=min_depth, lo=lo, hi=hi), sa


class TestForestStructure:
    @given(dna_lists, st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_validate_invariants(self, seqs, min_depth):
        forest, _sa = _forest_for(seqs, min_depth)
        forest.validate()

    @given(dna_lists)
    @settings(max_examples=40, deadline=None)
    def test_all_depths_at_least_threshold(self, seqs):
        forest, _ = _forest_for(seqs, min_depth=3)
        assert (forest.depth >= 3).all() or forest.n_nodes == 0

    def test_known_tree_shape(self):
        # "AA" + "AA": S = {AA, TT, AA, TT} (reverse complements included).
        # Each letter side contributes a depth-1 interval with a depth-2
        # interval (the identical 2-char suffixes) nested inside.
        forest, _ = _forest_for(["AA", "AA"], min_depth=1)
        assert sorted(forest.depth.tolist()) == [1, 1, 2, 2]
        forest.validate()
        for nid in range(forest.n_nodes):
            if forest.depth[nid] == 2:
                parent = int(forest.parent[nid])
                assert forest.depth[parent] == 1
                assert forest.parent[parent] == -1

    @given(dna_lists)
    @settings(max_examples=40, deadline=None)
    def test_every_interval_shares_prefix_of_its_depth(self, seqs):
        text, _ = EstCollection.from_strings(seqs).sa_text()
        sa = build_suffix_array(text)
        forest = build_lcp_forest(lcp_array(sa), min_depth=1)
        text_list = text.tolist()
        for nid in range(forest.n_nodes):
            d = int(forest.depth[nid])
            ps = [int(sa.sa[r]) for r in range(forest.lb[nid], forest.rb[nid] + 1)]
            first = text_list[ps[0] : ps[0] + d]
            assert len(first) == d
            for p in ps[1:]:
                assert text_list[p : p + d] == first

    @given(dna_lists)
    @settings(max_examples=40, deadline=None)
    def test_intervals_are_maximal(self, seqs):
        # Some adjacent pair inside the interval achieves exactly depth d,
        # and the neighbours outside share strictly less than d.
        text, _ = EstCollection.from_strings(seqs).sa_text()
        sa = build_suffix_array(text)
        lcp = lcp_array(sa)
        forest = build_lcp_forest(lcp, min_depth=1)
        m = len(lcp)
        for nid in range(forest.n_nodes):
            d, lb, rb = (int(forest.depth[nid]), int(forest.lb[nid]), int(forest.rb[nid]))
            inner = [int(lcp[r]) for r in range(lb + 1, rb + 1)]
            assert inner and min(inner) == d
            if lb > 0:
                assert lcp[lb] < d
            if rb + 1 < m:
                assert lcp[rb + 1] < d

    def test_nodes_by_decreasing_depth_children_first(self):
        forest, _ = _forest_for(["ACGTACGTAC", "GTACGTACGG", "ACGTAC"], min_depth=1)
        order = forest.nodes_by_decreasing_depth()
        pos = {int(n): i for i, n in enumerate(order)}
        for nid in range(forest.n_nodes):
            p = int(forest.parent[nid])
            if p >= 0:
                assert pos[nid] < pos[p]

    def test_roots_have_no_parent(self):
        forest, _ = _forest_for(["ACGTACGT", "CGTACGTA"], min_depth=2)
        for r in forest.roots():
            assert forest.parent[r] == -1


class TestForestRanges:
    def test_range_restriction_matches_global_deep_nodes(self):
        seqs = ["ACGTACGTACGT", "CGTACGTACGAA", "TTACGTACGT"]
        text, _ = EstCollection.from_strings(seqs).sa_text()
        sa = build_suffix_array(text)
        lcp = lcp_array(sa)
        glob = build_lcp_forest(lcp, min_depth=4)
        # Split the rank space at every lcp < 4 boundary: nodes with depth
        # >= 4 never span such boundaries, so per-range forests together
        # must equal the global deep forest.
        m = len(lcp)
        cuts = [0] + [r for r in range(1, m) if lcp[r] < 4] + [m]
        collected = []
        for lo, hi in zip(cuts[:-1], cuts[1:]):
            if hi > lo:
                f = build_lcp_forest(lcp, min_depth=4, lo=lo, hi=hi)
                collected.extend(
                    (int(f.depth[i]), int(f.lb[i]), int(f.rb[i]))
                    for i in range(f.n_nodes)
                )
        expected = [
            (int(glob.depth[i]), int(glob.lb[i]), int(glob.rb[i]))
            for i in range(glob.n_nodes)
        ]
        assert sorted(collected) == sorted(expected)

    def test_bad_args_rejected(self):
        forest, sa = _forest_for(["ACGT"])
        lcp = np.zeros(4)
        with pytest.raises(ValueError):
            build_lcp_forest(lcp, min_depth=0)
        with pytest.raises(ValueError):
            build_lcp_forest(lcp, min_depth=1, lo=3, hi=2)
        with pytest.raises(ValueError):
            build_lcp_forest(lcp, min_depth=1, lo=2, hi=9)


class TestFlatViews:
    """CSR mirrors of the per-node children/leaves lists."""

    @given(dna_lists, st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_flat_views_match_lists(self, seqs, min_depth):
        forest, _ = _forest_for(seqs, min_depth)
        co, lo = forest.children_offsets, forest.leaves_offsets
        assert co[0] == 0 and lo[0] == 0
        assert len(co) == len(lo) == forest.n_nodes + 1
        for v in range(forest.n_nodes):
            assert forest.children_flat[co[v] : co[v + 1]].tolist() == forest.children[v]
            assert forest.leaves_flat[lo[v] : lo[v + 1]].tolist() == forest.leaves[v]

    def test_flat_views_are_cached(self):
        forest, _ = _forest_for(["ACGTACGT", "ACGTAC"], 2)
        assert forest.children_flat is forest.children_flat
        assert forest.leaves_offsets is forest.leaves_offsets


class TestFlatBuilder:
    """`build_flat_forest` must reproduce the stack builder bit-for-bit:
    same node ids (emission order), parents, child and leaf ordering."""

    @staticmethod
    def _assert_same(list_forest, flat_forest):
        assert np.array_equal(list_forest.depth, flat_forest.depth)
        assert np.array_equal(list_forest.lb, flat_forest.lb)
        assert np.array_equal(list_forest.rb, flat_forest.rb)
        assert np.array_equal(list_forest.parent, flat_forest.parent)
        assert np.array_equal(list_forest.children_flat, flat_forest.children_flat)
        assert np.array_equal(
            list_forest.children_offsets, flat_forest.children_offsets
        )
        assert np.array_equal(list_forest.leaves_flat, flat_forest.leaves_flat)
        assert np.array_equal(
            list_forest.leaves_offsets, flat_forest.leaves_offsets
        )

    @given(dna_lists, st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_matches_stack_builder(self, seqs, min_depth):
        text, _ = EstCollection.from_strings(seqs).sa_text()
        sa = build_suffix_array(text)
        lcp = lcp_array(sa)
        list_forest = build_lcp_forest(lcp, min_depth=min_depth)
        flat_forest = build_flat_forest(lcp, min_depth=min_depth)
        self._assert_same(list_forest, flat_forest)
        flat_forest.validate()

    @given(dna_lists, st.data())
    @settings(max_examples=40, deadline=None)
    def test_matches_stack_builder_on_ranges(self, seqs, data):
        text, _ = EstCollection.from_strings(seqs).sa_text()
        sa = build_suffix_array(text)
        lcp = lcp_array(sa)
        lo = data.draw(st.integers(0, len(lcp) - 1))
        hi = data.draw(st.integers(lo + 1, len(lcp)))
        self._assert_same(
            build_lcp_forest(lcp, min_depth=2, lo=lo, hi=hi),
            build_flat_forest(lcp, min_depth=2, lo=lo, hi=hi),
        )

    def test_bad_args_rejected(self):
        with pytest.raises(ValueError, match="min_depth"):
            build_flat_forest(np.zeros(4, dtype=np.int64), min_depth=0)
        with pytest.raises(ValueError, match="invalid range"):
            build_flat_forest(np.zeros(4, dtype=np.int64), min_depth=1, lo=3, hi=9)
        with pytest.raises(ValueError, match="empty"):
            build_flat_forest(np.zeros(4, dtype=np.int64), min_depth=1, lo=2, hi=2)


class TestVectorisedValidate:
    """validate() is now whole-array sweeps; the failure messages must
    still name the first offending node."""

    def test_detects_broken_parent_link(self):
        forest, _ = _forest_for(["ACGTACGT", "ACGTACG", "ACGTAC"], 2)
        assert forest.children_flat.size > 0
        child = int(forest.children_flat[0])
        forest.parent[child] = child  # corrupt
        with pytest.raises(AssertionError, match="parent link|not nested|not deeper"):
            forest.validate()

    def test_detects_partition_violation(self):
        forest, _ = _forest_for(["ACGTACGT", "ACGTACG"], 2)
        # Drop a leaf from some node that has one.
        for v in range(forest.n_nodes):
            if forest.leaves[v]:
                forest.leaves[v] = forest.leaves[v][1:]
                break
        else:
            pytest.skip("no directly-attached leaves in this forest")
        with pytest.raises(AssertionError, match="does not partition"):
            forest.validate()

    def test_flat_forest_validate_detects_corruption(self):
        text, _ = EstCollection.from_strings(["ACGTACGT", "ACGTAC"]).sa_text()
        sa = build_suffix_array(text)
        forest = build_flat_forest(lcp_array(sa), min_depth=2)
        if forest.children_flat.size:
            forest.depth[forest.children_flat[0]] = 0
            with pytest.raises(AssertionError):
                forest.validate()
