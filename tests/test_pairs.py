"""Tests for the promising-pair layer: the canonical pair record, lsets,
the brute-force oracle, and the on-demand batching wrapper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pairs import (
    Lsets,
    OnDemandPairGenerator,
    Pair,
    StringMarker,
    canonical_pair,
    maximal_common_substrings,
)
from repro.pairs.bruteforce import (
    bruteforce_promising_pairs,
    distinct_maximal_substrings,
)
from repro.pairs.lsets import allowed_chars
from repro.sequence import EstCollection, LAMBDA, encode


class TestPairRecord:
    def test_properties(self):
        p = Pair(10, 4, 3, 7, 0)
        assert p.est_a == 2 and p.est_b == 3
        assert p.complemented  # string 7 is odd
        assert p.key == (2, 3, True)

    def test_canonical_orders_by_est(self):
        p = canonical_pair(5, 6, 1, 0, 2)  # est 3 vs est 0 -> swap
        assert p == Pair(5, 0, 2, 6, 1)

    def test_canonical_discards_same_est(self):
        assert canonical_pair(5, 2, 0, 3, 1) is None  # est 1 with own rc

    def test_canonical_discards_complemented_smaller(self):
        # String 1 (est 0, complemented) with string 4 (est 2): the
        # smaller-est member is complemented -> mirror generated elsewhere.
        assert canonical_pair(5, 1, 0, 4, 1) is None

    def test_canonical_keeps_forward_smaller(self):
        p = canonical_pair(5, 0, 7, 5, 2)
        assert p == Pair(5, 0, 7, 5, 2)
        assert p.complemented

    def test_exactly_one_of_mirror_pair_survives(self):
        # (s, s') and (s^1, s'^1) — exactly one canonicalises.
        for a, b in [(0, 5), (2, 7), (0, 4), (2, 6)]:
            direct = canonical_pair(9, a, 0, b, 0)
            mirror = canonical_pair(9, a ^ 1, 0, b ^ 1, 0)
            assert (direct is None) != (mirror is None)


class TestLsets:
    def test_add_and_iterate_in_class_order(self):
        ls = Lsets()
        ls.add(2, 10, 5)
        ls.add(0, 11, 6)
        ls.add(LAMBDA, 12, 0)
        assert list(ls) == [(0, 11, 6), (2, 10, 5), (LAMBDA, 12, 0)]
        assert ls.total() == 3
        assert ls.strings() == {10, 11, 12}

    def test_merge_concatenates_per_class(self):
        a, b = Lsets(), Lsets()
        a.add(1, 1, 0)
        b.add(1, 2, 0)
        b.add(3, 3, 0)
        a.merge(b)
        assert a.classes[1] == [(1, 0), (2, 0)]
        assert a.classes[3] == [(3, 0)]

    def test_marker_semantics(self):
        m = StringMarker(4)
        assert m.fresh(2, node=7)
        assert not m.fresh(2, node=7)
        assert m.fresh(2, node=8)  # new node resets implicitly
        assert m.fresh(3, node=8)

    def test_allowed_chars_rule(self):
        assert allowed_chars(0, 1)
        assert not allowed_chars(2, 2)
        assert allowed_chars(LAMBDA, LAMBDA)
        assert allowed_chars(LAMBDA, 0)


class TestBruteForce:
    def test_known_maximal_substrings(self):
        x, y = encode("AACGTT"), encode("CACGTG")
        hits = maximal_common_substrings(x, y, 3)
        assert (1, 1, 4) in hits  # ACGT at x[1:5], y[1:5]

    def test_maximality_left(self):
        # "XACG" vs "XACG": the full string is maximal; "ACG" at offset 1
        # is left-extensible by the same char, hence not reported.
        x = encode("TACG")
        hits = maximal_common_substrings(x, x, 3)
        assert (0, 0, 4) in hits
        assert (1, 1, 3) not in hits

    def test_maximality_right(self):
        x, y = encode("ACGA"), encode("ACGC")
        hits = maximal_common_substrings(x, y, 3)
        assert hits == [(0, 0, 3)]

    def test_empty_inputs(self):
        assert maximal_common_substrings(encode("ACG"), np.array([], dtype=np.uint8), 2) == []

    def test_min_len_validation(self):
        with pytest.raises(ValueError):
            maximal_common_substrings(encode("A"), encode("A"), 0)

    @given(
        st.text(alphabet="ACGT", min_size=3, max_size=25),
        st.text(alphabet="ACGT", min_size=3, max_size=25),
        st.integers(2, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_reported_hits_are_genuinely_maximal(self, sx, sy, k):
        x, y = encode(sx), encode(sy)
        for i, j, l in maximal_common_substrings(x, y, k):
            assert l >= k
            assert sx[i : i + l] == sy[j : j + l]
            if i > 0 and j > 0:
                assert sx[i - 1] != sy[j - 1]
            if i + l < len(sx) and j + l < len(sy):
                assert sx[i + l] != sy[j + l]

    def test_distinct_counts_strings_not_positions(self):
        # "ACAC" vs "ACAC": maximal occurrences of "AC.." several, but the
        # distinct maximal substring set collapses by content.
        x = encode("ACAC")
        d = distinct_maximal_substrings(x, x, 2)
        assert encode("ACAC").tobytes() in d

    def test_promising_pairs_orientation(self):
        # y is the reverse complement of x: only the complemented
        # orientation pair should appear.
        col = EstCollection.from_strings(["ACGTACGTAA", "TTACGTACGT"])
        truth = bruteforce_promising_pairs(col, 10)
        assert (0, 1, True) in truth
        assert (0, 1, False) not in truth


class TestOnDemand:
    def test_batches_and_exhaustion(self):
        gen = OnDemandPairGenerator(iter(range(7)))
        assert gen.next_batch(3) == [0, 1, 2]
        assert not gen.exhausted
        assert gen.next_batch(3) == [3, 4, 5]
        assert gen.next_batch(3) == [6]
        assert gen.exhausted
        assert gen.next_batch(3) == []
        assert gen.produced == 7

    def test_zero_batch(self):
        gen = OnDemandPairGenerator(iter([1]))
        assert gen.next_batch(0) == []
        assert not gen.exhausted

    def test_negative_batch_rejected(self):
        with pytest.raises(ValueError):
            OnDemandPairGenerator(iter([])).next_batch(-1)

    def test_iter_drains_remainder(self):
        gen = OnDemandPairGenerator(iter(range(5)))
        gen.next_batch(2)
        assert list(gen) == [2, 3, 4]
        assert gen.exhausted and gen.produced == 5

    def test_state_is_remembered_between_batches(self):
        # The on-demand contract of §2: no pair is recomputed or lost.
        gen = OnDemandPairGenerator(iter(range(100)))
        seen = []
        for size in (1, 2, 3, 50, 44, 10):
            seen.extend(gen.next_batch(size))
        assert seen == list(range(100))

    def test_exhausted_flips_with_the_draining_full_batch(self):
        # A stream of exactly k·m pairs must report exhaustion on the batch
        # that drains it, not on a later empty one — slaves turn passive
        # with that batch (§3.3) instead of paying an extra round trip.
        gen = OnDemandPairGenerator(iter(range(6)))
        assert gen.next_batch(3) == [0, 1, 2]
        assert not gen.exhausted
        assert gen.next_batch(3) == [3, 4, 5]
        assert gen.exhausted
        assert gen.next_batch(3) == []
        assert gen.produced == 6

    def test_lookahead_pair_is_not_lost(self):
        # The peeked pair must come back at the head of the next batch or
        # via iteration.
        gen = OnDemandPairGenerator(iter(range(5)))
        assert gen.next_batch(2) == [0, 1]
        assert gen.next_batch(2) == [2, 3]
        assert list(gen) == [4]
        assert gen.exhausted and gen.produced == 5

    def test_partial_final_batch_reaches_the_histogram(self):
        from repro.telemetry import Telemetry

        tel = Telemetry()
        gen = OnDemandPairGenerator(iter(range(7)), telemetry=tel)
        while not gen.exhausted:
            gen.next_batch(3)
        hist = tel.registry.snapshot()["histograms"]["pairs.batch_size"]
        assert hist["count"] == 3  # batches of 3, 3 and the partial 1
        assert hist["sum"] == 7.0
        assert tel.registry.get("pairs.produced") == 7

    def test_drain_batches_telemetry_updates(self):
        # The __iter__ drain path flushes the registry once per
        # DRAIN_FLUSH-pair chunk (plus the tail), not once per pair.
        from repro.pairs.ondemand import DRAIN_FLUSH
        from repro.telemetry import Telemetry

        n = 2 * DRAIN_FLUSH + 13
        tel = Telemetry()
        gen = OnDemandPairGenerator(iter(range(n)), telemetry=tel)
        assert list(gen) == list(range(n))
        assert tel.registry.get("pairs.produced") == n
        hist = tel.registry.snapshot()["histograms"]["pairs.batch_size"]
        assert hist["count"] == 3  # two full chunks + the tail of 13
        assert hist["sum"] == n

    def test_drain_flushes_tail_on_abandonment(self):
        # Breaking out of the drain mid-chunk must still account the
        # pairs already handed out (generator close runs the finally).
        from repro.telemetry import Telemetry

        tel = Telemetry()
        gen = OnDemandPairGenerator(iter(range(50)), telemetry=tel)
        for i, _item in enumerate(gen):
            if i == 9:
                break
        del gen  # closes the suspended drain generator
        assert tel.registry.get("pairs.produced") == 10

    def test_drain_counts_match_batch_path(self):
        # Whichever way a stream is consumed, pairs.produced agrees.
        from repro.telemetry import Telemetry

        tel_a, tel_b = Telemetry(), Telemetry()
        a = OnDemandPairGenerator(iter(range(301)), telemetry=tel_a)
        while not a.exhausted:
            a.next_batch(40)
        b = OnDemandPairGenerator(iter(range(301)), telemetry=tel_b)
        list(b)
        assert (
            tel_a.registry.get("pairs.produced")
            == tel_b.registry.get("pairs.produced")
            == 301
        )
