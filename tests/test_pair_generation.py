"""Property tests of Algorithm 1 on both backends against the brute-force
oracle — the machine-checked versions of the paper's Lemmas 1–4."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pairs import SaPairGenerator, TreePairGenerator
from repro.pairs.bruteforce import (
    bruteforce_promising_pairs,
    distinct_maximal_substrings,
    maximal_common_substrings,
)
from repro.sequence import EstCollection
from repro.suffix import NaiveGst, SuffixArrayGst


def _random_overlapping_collection(rng: np.random.Generator, n: int) -> EstCollection:
    """Reads off a short genome so pairs genuinely overlap."""
    genome = rng.integers(0, 4, size=int(rng.integers(30, 90)), dtype=np.uint8)
    seqs = []
    comp = 3 - genome
    for _ in range(n):
        a = int(rng.integers(0, len(genome) - 12))
        b = int(rng.integers(a + 10, min(len(genome), a + 45) + 1))
        s = genome[a:b]
        if rng.random() < 0.5:
            s = comp[a:b][::-1]
        seqs.append(s.copy())
    return EstCollection(seqs)


def _generators(col: EstCollection, psi: int):
    sa_gen = SaPairGenerator(SuffixArrayGst.build(col), psi)
    tree_gen = TreePairGenerator(NaiveGst.build(col, w=min(psi, 4)), psi)
    return sa_gen, tree_gen


seeds = st.integers(0, 10**6)


class TestCompletenessAndSoundness:
    """Lemma 3 (completeness) + Lemma 1 (soundness) as set equalities."""

    @given(seeds, st.integers(2, 7), st.integers(4, 10))
    @settings(max_examples=40, deadline=None)
    def test_both_backends_equal_bruteforce_set(self, seed, n, psi):
        rng = np.random.default_rng(seed)
        col = _random_overlapping_collection(rng, n)
        truth = bruteforce_promising_pairs(col, psi)
        sa_gen, tree_gen = _generators(col, psi)
        assert {p.key for p in sa_gen.pairs()} == truth
        assert {p.key for p in tree_gen.pairs()} == truth

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_seeds_are_exact_maximal_matches(self, seed):
        """Every emitted pair's witnessing seed is a genuine exact match
        that cannot be extended on either side (Lemma 1)."""
        rng = np.random.default_rng(seed)
        col = _random_overlapping_collection(rng, 5)
        sa_gen, tree_gen = _generators(col, 6)
        for gen in (sa_gen, tree_gen):
            for p in gen.pairs():
                a = col.string(p.string_a)
                b = col.string(p.string_b)
                seg_a = a[p.offset_a : p.offset_a + p.length]
                seg_b = b[p.offset_b : p.offset_b + p.length]
                assert np.array_equal(seg_a, seg_b)
                # Left-maximal.
                if p.offset_a > 0 and p.offset_b > 0:
                    assert a[p.offset_a - 1] != b[p.offset_b - 1]
                # Right-maximal.
                ea, eb = p.offset_a + p.length, p.offset_b + p.length
                if ea < len(a) and eb < len(b):
                    assert a[ea] != b[eb]


class TestMultiplicityAndOrder:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_multiplicity_bounded_by_distinct_maximal_substrings(self, seed):
        """Corollary 2: a pair is generated at most as many times as it has
        distinct maximal common substrings of length >= psi."""
        rng = np.random.default_rng(seed)
        col = _random_overlapping_collection(rng, 5)
        psi = 5
        sa_gen, tree_gen = _generators(col, psi)
        for gen in (sa_gen, tree_gen):
            counts: dict[tuple, int] = {}
            for p in gen.pairs():
                counts[p.key] = counts.get(p.key, 0) + 1
            for (i, j, orient), c in counts.items():
                x = col.string(2 * i)
                y = col.string(2 * j + int(orient))
                bound = len(distinct_maximal_substrings(x, y, psi))
                assert c <= bound, (i, j, orient, c, bound)

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_decreasing_substring_length_order(self, seed):
        """§3.2: pairs arrive in decreasing maximal-common-substring length."""
        rng = np.random.default_rng(seed)
        col = _random_overlapping_collection(rng, 6)
        sa_gen, tree_gen = _generators(col, 5)
        for gen in (sa_gen, tree_gen):
            lengths = [p.length for p in gen.pairs()]
            assert lengths == sorted(lengths, reverse=True)

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_pair_lengths_are_true_maximal_substring_lengths(self, seed):
        rng = np.random.default_rng(seed)
        col = _random_overlapping_collection(rng, 4)
        psi = 6
        sa_gen, _ = _generators(col, psi)
        for p in sa_gen.pairs():
            x = col.string(p.string_a)
            y = col.string(p.string_b)
            lens = {l for _i, _j, l in maximal_common_substrings(x, y, psi)}
            assert p.length in lens


class TestGeneratorMechanics:
    def test_determinism(self):
        rng = np.random.default_rng(99)
        col = _random_overlapping_collection(rng, 6)
        a = list(SaPairGenerator(SuffixArrayGst.build(col), 6).pairs())
        b = list(SaPairGenerator(SuffixArrayGst.build(col), 6).pairs())
        assert a == b

    def test_stats_counters(self):
        rng = np.random.default_rng(5)
        col = _random_overlapping_collection(rng, 6)
        gen = SaPairGenerator(SuffixArrayGst.build(col), 6)
        pairs = list(gen.pairs())
        assert gen.stats.pairs_generated == len(pairs)
        assert gen.stats.raw_pairs >= len(pairs)
        assert gen.stats.nodes_processed > 0

    def test_peak_lset_entries_linear_in_input(self):
        """The O(N) space claim of §3.2: live lset entries never exceed the
        number of suffix positions (one entry per suffix, created once)."""
        rng = np.random.default_rng(17)
        col = _random_overlapping_collection(rng, 8)
        gst = SuffixArrayGst.build(col)
        gen = SaPairGenerator(gst, 5)
        for _ in gen.pairs():
            pass
        assert 0 < gen.stats.peak_lset_entries <= gst.n_suffix_positions

    def test_psi_below_window_rejected_on_tree_backend(self):
        col = EstCollection.from_strings(["ACGTACGT"])
        gst = NaiveGst.build(col, w=4)
        with pytest.raises(ValueError, match="below the bucket window"):
            TreePairGenerator(gst, psi=3)

    def test_bad_psi_rejected(self):
        col = EstCollection.from_strings(["ACGTACGT"])
        with pytest.raises(ValueError):
            SaPairGenerator(SuffixArrayGst.build(col), psi=0)

    def test_no_pairs_when_psi_exceeds_lengths(self):
        col = EstCollection.from_strings(["ACGT", "ACGT"])
        gen = SaPairGenerator(SuffixArrayGst.build(col), psi=10)
        assert list(gen.pairs()) == []

    def test_identical_strings_pair_once_at_full_length(self):
        col = EstCollection.from_strings(["ACGTACGTGG", "ACGTACGTGG"])
        gen = SaPairGenerator(SuffixArrayGst.build(col), psi=5)
        pairs = list(gen.pairs())
        keys = {p.key for p in pairs}
        assert (0, 1, False) in keys
        full = [p for p in pairs if p.key == (0, 1, False)]
        assert max(p.length for p in full) == 10


class TestBucketRangeGeneration:
    @given(seeds, st.integers(2, 4))
    @settings(max_examples=20, deadline=None)
    def test_union_over_buckets_equals_global(self, seed, w):
        """Slave-local generation over bucket ranges collectively produces
        exactly the global pair multiset (ψ >= w ensures no loss)."""
        rng = np.random.default_rng(seed)
        col = _random_overlapping_collection(rng, 6)
        psi = 6
        gst = SuffixArrayGst.build(col)
        global_pairs = sorted(SaPairGenerator(gst, psi).pairs())
        ranges = gst.bucket_ranges(w)
        local: list = []
        # Split buckets across 3 simulated processors round-robin.
        for k in range(3):
            own = [(lo, hi) for idx, (_key, lo, hi) in enumerate(ranges) if idx % 3 == k]
            local.extend(SaPairGenerator(gst, psi, ranges=own).pairs())
        assert sorted(local) == global_pairs
