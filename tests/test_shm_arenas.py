"""Shared-memory arena tests: registry lifecycle, descriptor round-trips,
forest packing, and — the part that matters operationally — proof that no
``/dev/shm`` segment survives a run, whether it completed cleanly, lost a
slave to an injected crash, or was killed by a KeyboardInterrupt in the
master.  The fault oracle (clusters identical to the sequential driver)
is asserted with attached arenas throughout.
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import replace

import numpy as np
import pytest

from repro.core import PaceClusterer
from repro.parallel import (
    ArenaRegistry,
    FaultPlan,
    FaultSpec,
    FaultTolerance,
    GstArenas,
    attach_gst,
    cluster_multiprocessing,
    leaked_segments,
)
from repro.sequence import EstCollection
from repro.suffix import SuffixArrayGst
from repro.suffix.interval_tree import concat_flat_forests, split_flat_forests

HARD_DEADLINE_S = 120


@contextmanager
def hard_deadline(seconds: int = HARD_DEADLINE_S):
    """Fail (instead of hanging CI) if the body runs too long."""

    def on_alarm(signum, frame):
        raise TimeoutError(f"run exceeded {seconds}s — runtime hung")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="module")
def gst(small_benchmark):
    return SuffixArrayGst.build(small_benchmark.collection)


# --------------------------------------------------------------------- #
# registry lifecycle
# --------------------------------------------------------------------- #


class TestArenaRegistry:
    def test_create_attach_round_trip(self):
        arr = np.arange(1000, dtype=np.int32).reshape(10, 100)
        with ArenaRegistry() as reg:
            desc = reg.create(arr, "roundtrip")
            assert desc.dtype == "int32"
            assert desc.shape == (10, 100)
            assert desc.nbytes == arr.nbytes
            view = reg.attach(desc)
            np.testing.assert_array_equal(view, arr)
            assert not view.flags.writeable
        assert leaked_segments() == []

    def test_attach_from_second_registry(self):
        arr = np.linspace(0.0, 1.0, 17)
        owner = ArenaRegistry()
        desc = owner.create(arr, "xproc")
        attacher = ArenaRegistry()
        try:
            np.testing.assert_array_equal(attacher.attach(desc), arr)
        finally:
            attacher.close()
            owner.dispose()
        assert leaked_segments() == []

    def test_empty_array_round_trips(self):
        arr = np.empty(0, dtype=np.int64)
        with ArenaRegistry() as reg:
            desc = reg.create(arr, "empty")
            view = reg.attach(desc)
            assert view.size == 0
            assert view.dtype == np.int64

    def test_dispose_is_idempotent(self):
        reg = ArenaRegistry()
        reg.create(np.ones(8), "idem")
        reg.dispose()
        reg.dispose()
        reg.close()
        assert leaked_segments() == []

    def test_unlink_with_live_views_still_removes_names(self):
        # A live numpy view never pins the segment *name*: dispose()
        # always clears /dev/shm.  (The view itself is dangling after
        # close() — CPython unmaps regardless — so it must not be
        # dereferenced, which is why dispose is reserved for teardown.)
        reg = ArenaRegistry()
        desc = reg.create(np.arange(64), "pinned")
        view = reg.attach(desc)
        assert view[63] == 63
        reg.dispose()
        assert leaked_segments() == []

    def test_names_carry_the_audit_prefix(self):
        with ArenaRegistry() as reg:
            desc = reg.create(np.ones(4), "label")
            assert desc.name.startswith("pace-")
            assert desc.name.endswith("-label")
            assert leaked_segments() == [desc.name]


# --------------------------------------------------------------------- #
# descriptor reconstruction: collection, gst, forests
# --------------------------------------------------------------------- #


class TestAttachedGst:
    def test_collection_from_arena_is_equal(self, small_benchmark):
        col = small_benchmark.collection
        arena, offsets = col.arena()
        rebuilt = EstCollection.from_arena(arena, offsets)
        assert rebuilt.n_ests == col.n_ests
        for k in range(col.n_strings):
            np.testing.assert_array_equal(rebuilt.string(k), col.string(k))
        text_a, starts_a = rebuilt.sa_text()
        text_b, starts_b = col.sa_text()
        np.testing.assert_array_equal(text_a, text_b)
        np.testing.assert_array_equal(starts_a, starts_b)

    def test_forest_pack_unpack_round_trip(self, gst):
        ranges = [(lo, hi) for _k, lo, hi in gst.bucket_ranges(6)]
        forests = [
            gst.flat_forest(min_depth=15, lo=lo, hi=hi)
            for lo, hi in ranges
            if hi > lo
        ]
        packed = concat_flat_forests(forests)
        rebuilt = split_flat_forests(packed, 15)
        assert len(rebuilt) == len(forests)
        for orig, back in zip(forests, rebuilt):
            assert back.min_depth == orig.min_depth
            for name in (
                "depth", "lb", "rb", "parent",
                "children_flat", "children_offsets",
                "leaves_flat", "leaves_offsets",
            ):
                np.testing.assert_array_equal(
                    getattr(back, name), getattr(orig, name), err_msg=name
                )
            back.validate()

    def test_pack_unpack_empty_forest_list(self):
        packed = concat_flat_forests([])
        assert split_flat_forests(packed, 15) == []

    @pytest.mark.parametrize("engine", ["scalar", "vector"])
    def test_attached_gst_pairs_match_local(self, gst, small_config, engine):
        from repro.pairs.batch import make_pair_generator

        config = replace(small_config, pair_engine=engine)
        ranges = [(lo, hi) for _k, lo, hi in gst.bucket_ranges(config.w)]
        shared = GstArenas.create(
            gst, [ranges], pair_engine=engine, psi=config.psi
        )
        reg = ArenaRegistry()
        try:
            agst, forests = attach_gst(shared.bundle, reg, 0)
            local = list(
                make_pair_generator(gst, config, ranges=ranges).pairs()
            )
            attached = list(
                make_pair_generator(
                    agst, config, ranges=ranges, forests=forests
                ).pairs()
            )
            assert attached == local
        finally:
            reg.close()
            shared.dispose()
        assert leaked_segments() == []

    def test_create_failure_leaves_no_segments(self, gst, monkeypatch):
        # If publishing dies partway (here: on the LCP array), every
        # segment created before the failure must already be unlinked.
        original = ArenaRegistry.create

        def explode(self, array, label=""):
            if label == "lcp":
                raise OSError("boom")
            return original(self, array, label)

        monkeypatch.setattr(ArenaRegistry, "create", explode)
        with pytest.raises(OSError, match="boom"):
            GstArenas.create(gst, [[]], pair_engine="scalar", psi=15)
        assert leaked_segments() == []


# --------------------------------------------------------------------- #
# end-to-end lifecycle: no segment survives any kind of run
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def sequential_clusters(small_benchmark, small_config):
    return PaceClusterer(small_config).cluster(small_benchmark.collection).clusters


class TestRunLifecycle:
    @pytest.mark.parametrize("engine", ["scalar", "vector"])
    def test_clean_run_oracle_and_no_leaks(
        self, small_benchmark, small_config, sequential_clusters, engine
    ):
        config = replace(small_config, pair_engine=engine)
        with hard_deadline():
            res = cluster_multiprocessing(
                small_benchmark.collection, config, n_processors=3
            )
        assert res.clusters == sequential_clusters
        assert leaked_segments() == []

    def test_crashed_slave_oracle_and_no_leaks(
        self, small_benchmark, small_config, sequential_clusters
    ):
        # Slave 0 dies on every incarnation with no restart budget: the
        # degraded reabsorb path must reuse the shared forests and the
        # master must still unlink everything.
        plan = FaultPlan.of(
            FaultSpec(slave_id=0, kind="kill", at_message=1, incarnation=None)
        )
        tol = FaultTolerance(
            slave_timeout=15.0, poll_interval=0.05, max_restarts=0
        )
        with hard_deadline():
            res = cluster_multiprocessing(
                small_benchmark.collection,
                small_config,
                n_processors=3,
                faults=plan,
                tolerance=tol,
            )
        assert res.faults.slaves_lost >= 1
        assert res.clusters == sequential_clusters
        assert leaked_segments() == []

    def test_restarted_slave_attaches_and_no_leaks(
        self, small_benchmark, small_config, sequential_clusters
    ):
        plan = FaultPlan.of(
            FaultSpec(slave_id=1, kind="kill_after_send", at_message=1)
        )
        tol = FaultTolerance(
            slave_timeout=15.0, poll_interval=0.05, max_restarts=2
        )
        with hard_deadline():
            res = cluster_multiprocessing(
                small_benchmark.collection,
                small_config,
                n_processors=3,
                faults=plan,
                tolerance=tol,
            )
        assert res.faults.restarts >= 1
        assert res.clusters == sequential_clusters
        assert leaked_segments() == []

    def test_keyboard_interrupt_leaves_no_leaks(
        self, small_benchmark, small_config
    ):
        # Delay every slave's first report so the master is parked in its
        # poll loop when the interrupt lands mid-run; the finally block
        # must still unlink every segment.
        import _thread

        plan = FaultPlan.of(
            FaultSpec(slave_id=0, kind="delay", at_message=0, delay=3.0),
            FaultSpec(slave_id=1, kind="delay", at_message=0, delay=3.0),
        )
        timer = threading.Timer(0.5, _thread.interrupt_main)
        timer.start()
        try:
            with hard_deadline():
                with pytest.raises(KeyboardInterrupt):
                    cluster_multiprocessing(
                        small_benchmark.collection,
                        small_config,
                        n_processors=3,
                        faults=plan,
                    )
        finally:
            timer.cancel()
        # Give the interrupted teardown a beat to finish reaping.
        time.sleep(0.1)
        assert leaked_segments() == []
