"""Tests for suffix-array construction and LCP computation, including the
hypothesis cross-checks against brute-force references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequence import EstCollection
from repro.suffix import SuffixArray, build_suffix_array
from repro.suffix.lcp import (
    lcp_array,
    lcp_from_rank_levels,
    lcp_kasai,
    lcp_naive,
    lcp_pairwise_from_levels,
)
from repro.suffix.suffix_array import suffix_array_naive

dna_lists = st.lists(st.text(alphabet="ACGT", min_size=1, max_size=25), min_size=1, max_size=4)


def _text_of(seqs):
    return EstCollection.from_strings(seqs).sa_text()[0]


class TestBuildSuffixArray:
    def test_known_small_case(self):
        # banana-like over our integer encoding: "ABAB" with sentinel text
        text = np.array([5, 4, 5, 4, 0], dtype=np.int64)
        sa = build_suffix_array(text)
        assert np.array_equal(sa.sa, suffix_array_naive(text))

    @given(dna_lists)
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_on_est_texts(self, seqs):
        text = _text_of(seqs)
        sa = build_suffix_array(text)
        assert np.array_equal(sa.sa, suffix_array_naive(text))

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_on_arbitrary_ints(self, vals):
        text = np.array(vals, dtype=np.int64)
        sa = build_suffix_array(text)
        assert np.array_equal(sa.sa, suffix_array_naive(text))

    @given(dna_lists)
    @settings(max_examples=30, deadline=None)
    def test_sa_is_permutation_and_rank_inverse(self, seqs):
        text = _text_of(seqs)
        sa = build_suffix_array(text)
        m = len(text)
        assert sorted(sa.sa.tolist()) == list(range(m))
        assert np.array_equal(sa.rank[sa.sa], np.arange(m))

    def test_single_character(self):
        sa = build_suffix_array(np.array([7]))
        assert sa.sa.tolist() == [0]

    def test_repetitive_text_deep_doubling(self):
        text = np.array([1] * 64 + [0], dtype=np.int64)
        sa = build_suffix_array(text)
        # Suffixes sort by increasing length (sentinel smallest).
        assert sa.sa.tolist() == list(range(64, -1, -1))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_suffix_array(np.array([], dtype=np.int64))

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            build_suffix_array(np.array([-1, 0]))

    def test_keep_levels_false_skips_history(self):
        text = _text_of(["ACGTACGT"])
        assert build_suffix_array(text, keep_levels=False).rank_levels == []

    def test_levels_rank_prefixes(self):
        text = _text_of(["ACGTACGTAA", "CGTACG"])
        sa = build_suffix_array(text)
        text_list = text.tolist()
        m = len(text_list)
        for k, rank_k in sa.rank_levels:
            # Equal rank at level k must mean equal length-k prefixes.
            by_rank = {}
            for p in range(m):
                by_rank.setdefault(int(rank_k[p]), []).append(p)
            for group in by_rank.values():
                first = text_list[group[0] : group[0] + k]
                for p in group[1:]:
                    assert text_list[p : p + k] == first


class TestLcp:
    @given(dna_lists)
    @settings(max_examples=60, deadline=None)
    def test_kasai_matches_naive(self, seqs):
        text = _text_of(seqs)
        sa = build_suffix_array(text)
        assert np.array_equal(lcp_kasai(text, sa.sa), lcp_naive(text, sa.sa))

    @given(dna_lists)
    @settings(max_examples=60, deadline=None)
    def test_rank_level_lcp_matches_kasai(self, seqs):
        text = _text_of(seqs)
        sa = build_suffix_array(text)
        assert np.array_equal(lcp_from_rank_levels(sa), lcp_kasai(text, sa.sa))

    def test_lcp_array_dispatches_when_no_levels(self):
        text = _text_of(["ACGT", "GTAC"])
        sa = build_suffix_array(text, keep_levels=False)
        assert np.array_equal(lcp_array(sa), lcp_kasai(text, sa.sa))

    def test_lcp_never_crosses_string_boundary(self):
        # Identical strings: LCP capped at string length by unique sentinels.
        col = EstCollection.from_strings(["ACGTACGT", "ACGTACGT"])
        text, _ = col.sa_text()
        sa = build_suffix_array(text)
        assert int(lcp_array(sa).max()) == 8

    @given(dna_lists, st.integers(0, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_pairwise_lcp_arbitrary_pairs(self, seqs, seed):
        text = _text_of(seqs)
        sa = build_suffix_array(text)
        rng = np.random.default_rng(seed)
        m = len(text)
        left = rng.integers(0, m, size=8)
        right = rng.integers(0, m, size=8)
        mask = left != right
        got = lcp_pairwise_from_levels(sa, left[mask], right[mask])
        text_list = text.tolist()
        for (i, j, h) in zip(left[mask], right[mask], got):
            expect = 0
            while i + expect < m and j + expect < m and text_list[i + expect] == text_list[j + expect]:
                expect += 1
            assert h == expect
