"""Tests for the real-process (multiprocessing) parallel backend."""

import pytest

from repro.core import PaceClusterer
from repro.parallel import cluster_multiprocessing, run_parallel


class TestMultiprocessingBackend:
    def test_matches_sequential_partition(self, small_benchmark, small_config):
        seq = PaceClusterer(small_config).cluster(small_benchmark.collection)
        par = cluster_multiprocessing(
            small_benchmark.collection, small_config, n_processors=3
        )
        assert par.clusters == seq.clusters

    def test_counters_populated(self, small_benchmark, small_config):
        res = cluster_multiprocessing(
            small_benchmark.collection, small_config, n_processors=2
        )
        c = res.counters
        assert c.pairs_generated > 0
        assert c.pairs_processed > 0
        assert c.pairs_accepted <= c.pairs_processed
        assert c.dp_cells > 0

    def test_rejects_single_processor(self, small_benchmark, small_config):
        with pytest.raises(ValueError):
            cluster_multiprocessing(
                small_benchmark.collection, small_config, n_processors=1
            )

    def test_timings_recorded(self, small_benchmark, small_config):
        res = cluster_multiprocessing(
            small_benchmark.collection, small_config, n_processors=2
        )
        assert res.timings.get("gst_construction") > 0
        assert res.timings.get("alignment") > 0


class TestRunParallelFacade:
    def test_simulated_dispatch(self, small_benchmark, small_config):
        res = run_parallel(
            small_benchmark.collection,
            small_config,
            n_processors=4,
            machine="simulated",
        )
        assert res.n_clusters > 0

    def test_multiprocessing_dispatch(self, small_benchmark, small_config):
        res = run_parallel(
            small_benchmark.collection,
            small_config,
            n_processors=2,
            machine="multiprocessing",
        )
        assert res.n_clusters > 0

    def test_unknown_machine_rejected(self, small_benchmark, small_config):
        with pytest.raises(ValueError, match="unknown machine"):
            run_parallel(small_benchmark.collection, small_config, machine="quantum")

    def test_engines_agree(self, small_benchmark, small_config):
        sim = run_parallel(
            small_benchmark.collection, small_config, n_processors=3, machine="simulated"
        )
        mp = run_parallel(
            small_benchmark.collection,
            small_config,
            n_processors=3,
            machine="multiprocessing",
        )
        assert sim.clusters == mp.clusters
