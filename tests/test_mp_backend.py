"""Tests for the real-process (multiprocessing) parallel backend."""

import multiprocessing as mp
import time

import pytest

from repro.core import PaceClusterer
from repro.parallel import cluster_multiprocessing, leaked_segments, run_parallel
from repro.parallel import mp_backend


class TestMultiprocessingBackend:
    def test_matches_sequential_partition(self, small_benchmark, small_config):
        seq = PaceClusterer(small_config).cluster(small_benchmark.collection)
        par = cluster_multiprocessing(
            small_benchmark.collection, small_config, n_processors=3
        )
        assert par.clusters == seq.clusters

    def test_counters_populated(self, small_benchmark, small_config):
        res = cluster_multiprocessing(
            small_benchmark.collection, small_config, n_processors=2
        )
        c = res.counters
        assert c.pairs_generated > 0
        assert c.pairs_processed > 0
        assert c.pairs_accepted <= c.pairs_processed
        assert c.dp_cells > 0

    def test_rejects_single_processor(self, small_benchmark, small_config):
        with pytest.raises(ValueError):
            cluster_multiprocessing(
                small_benchmark.collection, small_config, n_processors=1
            )

    def test_timings_recorded(self, small_benchmark, small_config):
        res = cluster_multiprocessing(
            small_benchmark.collection, small_config, n_processors=2
        )
        assert res.timings.get("gst_construction") > 0
        assert res.timings.get("alignment") > 0


class TestSpawnFailureTeardown:
    def test_partial_startup_is_torn_down(
        self, small_benchmark, small_config, monkeypatch
    ):
        """If spawning slave k of p fails, the k-1 already-running slaves
        and their pipes must be torn down (and the shared arenas
        unlinked) before the error propagates — regression test for the
        startup handle leak."""
        real_start = mp_backend._start_process
        calls = {"n": 0}

        def failing_start(proc):
            calls["n"] += 1
            if calls["n"] == 2:
                raise OSError("injected spawn failure")
            real_start(proc)

        monkeypatch.setattr(mp_backend, "_start_process", failing_start)
        with pytest.raises(OSError, match="injected spawn failure"):
            cluster_multiprocessing(
                small_benchmark.collection, small_config, n_processors=4
            )
        assert calls["n"] == 2  # the loop stopped at the failure
        # Slave 0 was already running: the teardown must have reaped it.
        deadline = time.monotonic() + 10
        while mp.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert mp.active_children() == []
        # And the published segments must be gone despite the early abort.
        assert leaked_segments() == []

    def test_failure_on_first_spawn_closes_its_pipe(
        self, small_benchmark, small_config, monkeypatch
    ):
        def always_fail(proc):
            raise OSError("no processes today")

        monkeypatch.setattr(mp_backend, "_start_process", always_fail)
        with pytest.raises(OSError, match="no processes today"):
            cluster_multiprocessing(
                small_benchmark.collection, small_config, n_processors=2
            )
        assert mp.active_children() == []
        assert leaked_segments() == []


class TestRunParallelFacade:
    def test_simulated_dispatch(self, small_benchmark, small_config):
        res = run_parallel(
            small_benchmark.collection,
            small_config,
            n_processors=4,
            machine="simulated",
        )
        assert res.n_clusters > 0

    def test_multiprocessing_dispatch(self, small_benchmark, small_config):
        res = run_parallel(
            small_benchmark.collection,
            small_config,
            n_processors=2,
            machine="multiprocessing",
        )
        assert res.n_clusters > 0

    def test_unknown_machine_rejected(self, small_benchmark, small_config):
        with pytest.raises(ValueError, match="unknown machine"):
            run_parallel(small_benchmark.collection, small_config, machine="quantum")

    def test_engines_agree(self, small_benchmark, small_config):
        sim = run_parallel(
            small_benchmark.collection, small_config, n_processors=3, machine="simulated"
        )
        mp = run_parallel(
            small_benchmark.collection,
            small_config,
            n_processors=3,
            machine="multiprocessing",
        )
        assert sim.clusters == mp.clusters
