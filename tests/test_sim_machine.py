"""Tests for the discrete-event simulated multiprocessor."""

import pytest

from repro.core import ClusteringConfig, PaceClusterer
from repro.metrics import assess_clustering
from repro.parallel import CostModel, SimulatedMachine, simulate_clustering
from repro.suffix import SuffixArrayGst


class TestSimulatedMachine:
    def test_rejects_single_processor(self, small_benchmark, small_config):
        with pytest.raises(ValueError, match="master and >= 1 slave"):
            SimulatedMachine(small_benchmark.collection, small_config, n_processors=1)

    def test_partition_identical_to_sequential(self, small_benchmark, small_config):
        seq = PaceClusterer(small_config).cluster(small_benchmark.collection)
        for p in (2, 4, 8):
            rep = simulate_clustering(
                small_benchmark.collection, small_config, n_processors=p
            )
            assert rep.result.clusters == seq.clusters, f"p={p}"

    def test_bitwise_determinism(self, small_benchmark, small_config):
        a = simulate_clustering(small_benchmark.collection, small_config, n_processors=4)
        b = simulate_clustering(small_benchmark.collection, small_config, n_processors=4)
        assert a.result.clusters == b.result.clusters
        assert a.total_time == b.total_time
        assert a.messages_exchanged == b.messages_exchanged
        assert a.master_busy_time == b.master_busy_time

    def test_virtual_time_decreases_with_processors(self, small_benchmark, small_config):
        gst = SuffixArrayGst.build(small_benchmark.collection)
        times = [
            simulate_clustering(
                small_benchmark.collection, small_config, n_processors=p, gst=gst
            ).total_time
            for p in (2, 4, 8)
        ]
        assert times[0] > times[1] > times[2]

    def test_components_sum_close_to_total(self, small_benchmark, small_config):
        rep = simulate_clustering(small_benchmark.collection, small_config, n_processors=4)
        comp_sum = rep.result.timings.total
        # Components are the paper's accounting: setup pieces (max over
        # slaves) + the clustering phase; together they bound the end time.
        assert comp_sum >= rep.total_time * 0.7
        assert rep.result.timings.get("gst_construction") > 0
        assert rep.result.timings.get("alignment") > 0

    def test_quality_matches_sequential(self, small_benchmark, small_config):
        truth = small_benchmark.true_clusters()
        n = small_benchmark.collection.n_ests
        seq_q = assess_clustering(
            PaceClusterer(small_config).cluster(small_benchmark.collection).clusters,
            truth,
            n,
        )
        par_q = assess_clustering(
            simulate_clustering(
                small_benchmark.collection, small_config, n_processors=8
            ).result.clusters,
            truth,
            n,
        )
        assert par_q.oq == pytest.approx(seq_q.oq)
        assert par_q.cc == pytest.approx(seq_q.cc)

    def test_master_busy_fraction_small(self, small_benchmark, small_config):
        rep = simulate_clustering(small_benchmark.collection, small_config, n_processors=8)
        assert rep.master_busy_fraction < 0.25  # tiny input; at scale ≪ 2%

    def test_counters_consistent(self, small_benchmark, small_config):
        rep = simulate_clustering(small_benchmark.collection, small_config, n_processors=4)
        c = rep.result.counters
        assert c.pairs_generated > 0
        assert c.pairs_processed > 0
        assert c.pairs_accepted <= c.pairs_processed
        assert c.dp_cells > 0

    def test_custom_cost_model_changes_time_not_result(
        self, small_benchmark, small_config
    ):
        slow_comm = CostModel(comm_latency=5e-3)
        base = simulate_clustering(small_benchmark.collection, small_config, n_processors=4)
        slow = simulate_clustering(
            small_benchmark.collection,
            small_config,
            n_processors=4,
            cost_model=slow_comm,
        )
        assert slow.total_time > base.total_time
        assert slow.result.clusters == base.result.clusters

    def test_batchsize_affects_message_count(self, small_benchmark):
        small = ClusteringConfig.small_reads(batchsize=5)
        large = ClusteringConfig.small_reads(batchsize=100)
        rep_small = simulate_clustering(
            small_benchmark.collection, small, n_processors=4
        )
        rep_large = simulate_clustering(
            small_benchmark.collection, large, n_processors=4
        )
        assert rep_small.messages_exchanged > rep_large.messages_exchanged

    def test_many_processors_ok_with_few_buckets(self, small_benchmark, small_config):
        # More slaves than buckets: surplus slaves are exhausted at birth.
        rep = simulate_clustering(
            small_benchmark.collection, small_config, n_processors=64
        )
        assert rep.result.n_clusters > 0
