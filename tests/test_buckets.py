"""Tests for suffix bucketing (the w-window distribution units)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequence import EstCollection, encode
from repro.suffix import (
    SuffixArrayGst,
    enumerate_bucket_suffixes,
    suffix_window_keys,
)
from repro.suffix.buckets import bucket_statistics

dna_lists = st.lists(st.text(alphabet="ACGT", min_size=1, max_size=30), min_size=1, max_size=4)


class TestWindowKeys:
    def test_known_keys(self):
        # "ACGT": windows of 2 -> AC=0*4+1, CG=1*4+2, GT=2*4+3
        assert suffix_window_keys(encode("ACGT"), 2).tolist() == [1, 6, 11]

    def test_short_string_yields_nothing(self):
        assert suffix_window_keys(encode("AC"), 3).size == 0

    def test_w1_is_identity(self):
        assert suffix_window_keys(encode("GATC"), 1).tolist() == [2, 0, 3, 1]

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            suffix_window_keys(encode("ACGT"), 0)

    @given(st.text(alphabet="ACGT", min_size=4, max_size=40), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_keys_decode_back_to_windows(self, s, w):
        keys = suffix_window_keys(encode(s), w)
        for off, key in enumerate(keys.tolist()):
            digits = []
            for _ in range(w):
                digits.append("ACGT"[key % 4])
                key //= 4
            assert "".join(reversed(digits)) == s[off : off + w]


class TestEnumerateBuckets:
    @given(dna_lists, st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_partition_of_long_suffixes(self, seqs, w):
        col = EstCollection.from_strings(seqs)
        buckets = enumerate_bucket_suffixes(col, w)
        total = sum(len(v) for v in buckets.values())
        expect = sum(
            max(0, col.length(k) - w + 1) for k in range(col.n_strings)
        )
        assert total == expect
        # No suffix appears twice.
        seen = set()
        for entries in buckets.values():
            for e in entries:
                assert e not in seen
                seen.add(e)

    def test_bucket_members_share_prefix(self):
        col = EstCollection.from_strings(["ACGTAC", "GTACGT"])
        for key, entries in enumerate_bucket_suffixes(col, 3).items():
            prefixes = {
                tuple(col.string(k)[off : off + 3].tolist()) for k, off in entries
            }
            assert len(prefixes) == 1


class TestSaBucketRanges:
    @given(dna_lists, st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_ranges_match_enumeration(self, seqs, w):
        col = EstCollection.from_strings(seqs)
        gst = SuffixArrayGst.build(col)
        ranges = gst.bucket_ranges(w)
        enum = enumerate_bucket_suffixes(col, w)
        # Same keys, same sizes.
        assert {key: hi - lo for key, lo, hi in ranges} == {
            key: len(v) for key, v in enum.items()
        }
        # Each range really contains the suffixes of that bucket.
        for key, lo, hi in ranges:
            got = set()
            for r in range(lo, hi):
                s, off, _c = gst.suffix_info(r)
                got.add((s, off))
            assert got == set(enum[key])

    @given(dna_lists)
    @settings(max_examples=30, deadline=None)
    def test_ranges_are_disjoint_and_ordered(self, seqs):
        gst = SuffixArrayGst.build(EstCollection.from_strings(seqs))
        ranges = gst.bucket_ranges(2)
        for (k1, lo1, hi1), (k2, lo2, hi2) in zip(ranges, ranges[1:]):
            assert hi1 <= lo2
            assert lo1 < hi1 and lo2 < hi2


class TestBucketStats:
    def test_statistics(self):
        stats = bucket_statistics([4, 2, 6])
        assert stats.n_buckets == 3
        assert stats.total_suffixes == 12
        assert stats.max_bucket == 6
        assert stats.mean_bucket == 4.0
        assert stats.imbalance == pytest.approx(1.5)

    def test_empty(self):
        stats = bucket_statistics([])
        assert stats.n_buckets == 0 and stats.imbalance == 0.0
