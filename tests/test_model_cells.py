"""Tests for the banded-equivalent work accounting (model cells) and the
align_engine configuration plumbing."""

import pytest

from repro.align import AcceptanceCriteria, PairAligner
from repro.core import ClusteringConfig, PaceClusterer
from repro.pairs import Pair
from repro.sequence import EstCollection


@pytest.fixture()
def overlap_pair():
    # The seed sits mid-overlap: both extensions have real work to do
    # (30 bp of matching context on each side of the 16 bp seed).
    import numpy as np

    rng = np.random.default_rng(8)
    core = "".join("ACGT"[c] for c in rng.integers(0, 4, 76))
    a = "TTTTT" + core
    b = core + "GGGGG"
    col = EstCollection.from_strings([a, b])
    seed = core[30:46]
    return col, Pair(len(seed), 0, a.index(seed), 2, b.index(seed))


class TestModelCells:
    def test_banded_engine_tracks_both(self, overlap_pair):
        col, pair = overlap_pair
        aligner = PairAligner(col, engine="banded")
        aligner.align_pair(pair)
        assert aligner.dp_cells_total > 0
        assert aligner.model_cells_total > 0

    def test_kdiff_does_less_actual_work_same_model_work(self, overlap_pair):
        col, pair = overlap_pair
        banded = PairAligner(col, engine="banded")
        kdiff = PairAligner(col, engine="kdiff")
        banded.align_pair(pair)
        kdiff.align_pair(pair)
        # Model cells are engine-independent (band area of the same seeds).
        assert banded.model_cells_total == kdiff.model_cells_total
        assert kdiff.dp_cells_total < banded.model_cells_total

    def test_full_dp_model_equals_actual(self, overlap_pair):
        col, pair = overlap_pair
        aligner = PairAligner(col, use_seed_extension=False)
        aligner.align_pair(pair)
        assert aligner.model_cells_total == aligner.dp_cells_total


class TestAlignEngineConfig:
    def test_config_validates_engine(self):
        with pytest.raises(ValueError, match="unknown align_engine"):
            ClusteringConfig(align_engine="magic")

    def test_pipeline_engines_agree_on_partition(self, clean_benchmark):
        banded = PaceClusterer(
            ClusteringConfig.small_reads(align_engine="banded")
        ).cluster(clean_benchmark.collection)
        kdiff = PaceClusterer(
            ClusteringConfig.small_reads(align_engine="kdiff")
        ).cluster(clean_benchmark.collection)
        # Error-free benchmark: accepted overlaps are exact matches for
        # both scorers, so the partitions coincide.
        assert banded.clusters == kdiff.clusters

    def test_simulated_machine_virtual_time_engine_invariant(
        self, clean_benchmark
    ):
        """The simulator charges banded-equivalent work, so swapping the
        host engine must not change virtual time on error-free data."""
        from repro.parallel import simulate_clustering

        t = {}
        for engine in ("banded", "kdiff"):
            cfg = ClusteringConfig.small_reads(align_engine=engine)
            rep = simulate_clustering(
                clean_benchmark.collection, cfg, n_processors=4
            )
            t[engine] = rep.total_time
        assert t["banded"] == pytest.approx(t["kdiff"], rel=1e-6)
