"""Tests for the seed-and-extend pair aligner (Fig. 5a engine)."""

import pytest

from repro.align import (
    AcceptanceCriteria,
    BandPolicy,
    OverlapPattern,
    PairAligner,
    ScoringParams,
)
from repro.pairs import Pair
from repro.sequence import EstCollection, reverse_complement_str


def _pair_for(col: EstCollection, i: int, j: int, orient: int, seed: str) -> Pair:
    """Build a Pair from an exact shared substring (test helper)."""
    a = col.est_string(i)
    sb = col.est_string(j) if orient == 0 else reverse_complement_str(col.est_string(j))
    off_a, off_b = a.index(seed), sb.index(seed)
    return Pair(len(seed), 2 * i, off_a, 2 * j + orient, off_b)


class TestBandPolicy:
    def test_band_grows_with_extension(self):
        bp = BandPolicy(band_rate=0.1, band_min=3)
        assert bp.band_for(10) == 3  # floor
        assert bp.band_for(200) == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            BandPolicy(band_rate=1.5)
        with pytest.raises(ValueError):
            BandPolicy(band_min=-1)

    def test_rate_one_disables_banding(self):
        assert BandPolicy(band_rate=1.0, band_min=0).band_for(500) == 500


class TestPairAligner:
    def setup_method(self):
        # b extends a to the right; c is contained in a; d is unrelated.
        self.col = EstCollection.from_strings(
            [
                "TTTTTTTTTTACGTACGTACGTCCCC",  # a
                "ACGTACGTACGTCCCCGGGGGGGG",  # b: dovetail with a
                "ACGTACGTACGT",  # c: contained in a
                "CACACACACACACACACACA",  # d
            ]
        )
        self.aligner = PairAligner(
            self.col,
            criteria=AcceptanceCriteria(min_score_ratio=0.8, min_overlap=10),
        )

    def test_dovetail_detected_and_accepted(self):
        pair = _pair_for(self.col, 0, 1, 0, "ACGTACGTACGTCCCC")
        result, ok = self.aligner.align_and_decide(pair)
        assert ok
        assert result.pattern == OverlapPattern.SUFFIX_A_PREFIX_B
        assert result.a_end == self.col.length(0)
        assert result.b_start == 0

    def test_containment_detected(self):
        pair = _pair_for(self.col, 0, 2, 0, "ACGTACGTACGT")
        result, ok = self.aligner.align_and_decide(pair)
        assert ok
        assert result.pattern == OverlapPattern.A_CONTAINS_B

    def test_score_counts_seed_plus_extensions(self):
        pair = _pair_for(self.col, 0, 2, 0, "ACGTACGT")  # seed shorter than overlap
        result = self.aligner.align_pair(pair)
        # The full 12-char containment should be recovered around the seed.
        assert result.score == ScoringParams().match * 12

    def test_reverse_complement_pair(self):
        # EST 1 vs the rc of EST 1's tail placed as a new EST.
        col = EstCollection.from_strings(
            ["AAAACGTACGTACGTACC", reverse_complement_str("CGTACGTACGTACC")]
        )
        aligner = PairAligner(col, criteria=AcceptanceCriteria(0.8, 10))
        pair = Pair(14, 0, 4, 3, 0)
        result, ok = aligner.align_and_decide(pair)
        assert ok and result.overlap_len == 14

    def test_counters_accumulate(self):
        pair = _pair_for(self.col, 0, 2, 0, "ACGTACGTACGT")
        before = self.aligner.alignments_performed
        self.aligner.align_pair(pair)
        self.aligner.align_pair(pair)
        assert self.aligner.alignments_performed == before + 2
        assert self.aligner.dp_cells_total > 0

    def test_full_dp_mode_uses_whole_strings(self):
        full = PairAligner(
            self.col,
            criteria=AcceptanceCriteria(min_score_ratio=0.8, min_overlap=10),
            use_seed_extension=False,
        )
        pair = _pair_for(self.col, 0, 1, 0, "ACGTACGTACGTCCCC")
        r_full = full.align_pair(pair)
        r_seed = self.aligner.align_pair(pair)
        # Same accepted overlap, vastly more DP cells.
        assert r_full.pattern == r_seed.pattern
        assert r_full.dp_cells > 5 * r_seed.dp_cells

    def test_unrelated_pair_rejected(self):
        # Force-align a with d on a fake 4-char seed: should fail acceptance.
        a = self.col.est_string(0)
        pair = Pair(2, 0, a.index("CA") if "CA" in a else 0, 6, 0)
        _result, ok = self.aligner.align_and_decide(pair)
        assert not ok
