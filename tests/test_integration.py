"""End-to-end integration tests across the whole system.

These are the tests that tie the reproduction to the paper's claims:
order-independence of the final partition, robustness to sequencing
errors, strand-invariance, parity between all execution engines, and the
conservative (UN > OV) quality profile of Table 2.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.align import AcceptanceCriteria
from repro.baselines import allpairs_cluster
from repro.core import ClusteringConfig, PaceClusterer
from repro.metrics import assess_clustering
from repro.parallel import cluster_multiprocessing, simulate_clustering
from repro.sequence import EstCollection, reverse_complement
from repro.simulate import BenchmarkParams, ErrorModel, ReadParams, make_benchmark


class TestOrderIndependence:
    def test_partition_invariant_under_pair_order(self, small_benchmark, small_config):
        """The final partition is the connected components of the
        accepted-pair graph, so any processing order yields the same
        clusters (the property that makes parallel == sequential)."""
        base = PaceClusterer(small_config).cluster(small_benchmark.collection).clusters
        for seed in (0, 1, 2):
            shuffled = allpairs_cluster(
                small_benchmark.collection, small_config, order="arbitrary", rng=seed
            )
            assert shuffled.result.clusters == base
        worst = allpairs_cluster(
            small_benchmark.collection, small_config, order="worst_first"
        )
        assert worst.result.clusters == base


class TestEngineParity:
    def test_all_four_engines_agree(self, small_benchmark, small_config):
        col = small_benchmark.collection
        seq_sa = PaceClusterer(small_config).cluster(col).clusters
        seq_tree = PaceClusterer(
            ClusteringConfig.small_reads(backend="tree")
        ).cluster(col).clusters
        sim = simulate_clustering(col, small_config, n_processors=5).result.clusters
        mp = cluster_multiprocessing(col, small_config, n_processors=3).clusters
        assert seq_sa == seq_tree == sim == mp

    @pytest.mark.parametrize("align_batch", [0, 48])
    def test_batched_and_per_pair_cluster_output_identical(
        self, small_benchmark, small_config, align_batch
    ):
        """The batched aligner is a pure performance layer: byte-identical
        cluster output to the per-pair reference engine."""
        col = small_benchmark.collection
        reference = PaceClusterer(small_config).cluster(col).clusters
        cfg = replace(small_config, align_batch=align_batch)
        got = PaceClusterer(cfg).cluster(col).clusters
        assert repr(got).encode() == repr(reference).encode()

    def test_parallel_engines_with_batched_aligner(self, small_benchmark, small_config):
        col = small_benchmark.collection
        reference = PaceClusterer(small_config).cluster(col).clusters
        cfg = replace(small_config, align_batch=32)
        sim = simulate_clustering(col, cfg, n_processors=4).result.clusters
        mp = cluster_multiprocessing(col, cfg, n_processors=2).clusters
        assert sim == reference
        assert mp == reference


class TestErrorRobustness:
    @pytest.mark.parametrize("error_total", [0.0, 0.01, 0.02, 0.04])
    def test_quality_degrades_gracefully(self, error_total):
        sub = error_total / 2
        indel = error_total / 4
        params = BenchmarkParams(
            n_genes=8,
            mean_ests_per_gene=10,
            read_params=ReadParams.short_reads(),
            error_model=ErrorModel(sub, indel, indel),
            n_exons_range=(1, 3),
            exon_len_range=(80, 200),
        )
        bench = make_benchmark(params, rng=42)
        cfg = ClusteringConfig.small_reads(
            acceptance=AcceptanceCriteria(min_score_ratio=0.7, min_overlap=30)
        )
        result = PaceClusterer(cfg).cluster(bench.collection)
        q = assess_clustering(result.clusters, bench.true_clusters(), bench.n_ests)
        assert q.cc > 80.0, f"CC collapsed at error rate {error_total}: {q}"
        assert q.ov < 20.0

    def test_conservative_profile_un_exceeds_ov(self, small_benchmark, small_config):
        """Table 2's signature: under-prediction > over-prediction."""
        result = PaceClusterer(small_config).cluster(small_benchmark.collection)
        q = assess_clustering(
            result.clusters, small_benchmark.true_clusters(), small_benchmark.n_ests
        )
        assert q.un >= q.ov


class TestStrandInvariance:
    def test_reverse_complementing_inputs_keeps_partition(
        self, small_benchmark, small_config
    ):
        """Flipping any EST to its reverse complement must not change the
        clustering — the doubled string set S sees both strands anyway."""
        col = small_benchmark.collection
        rng = np.random.default_rng(0)
        flipped = []
        for i in range(col.n_ests):
            est = col.est(i).copy()
            if rng.random() < 0.5:
                est = reverse_complement(est)
            flipped.append(est)
        col2 = EstCollection(flipped)
        a = PaceClusterer(small_config).cluster(col).clusters
        b = PaceClusterer(small_config).cluster(col2).clusters
        assert a == b


class TestScalingShape:
    def test_fig7_shape_processed_much_less_than_generated(
        self, small_benchmark, small_config
    ):
        c = PaceClusterer(small_config).cluster(small_benchmark.collection).counters
        assert c.pairs_processed < 0.25 * c.pairs_generated
        assert 0 < c.pairs_accepted <= c.pairs_processed

    def test_fig6a_speedup_monotone(self, small_benchmark, small_config):
        from repro.suffix import SuffixArrayGst

        gst = SuffixArrayGst.build(small_benchmark.collection)
        times = {
            p: simulate_clustering(
                small_benchmark.collection, small_config, n_processors=p, gst=gst
            ).total_time
            for p in (2, 4, 8, 16)
        }
        assert times[2] > times[4] > times[8] > times[16]

    def test_duplicate_reads_cluster_trivially(self, small_config):
        reads = ["ACGTACGTACGTACGTACGTACGTACGTACGTAGTCAGTC"] * 5 + [
            "TTTTGGGGCCCCAAAATTTTGGGGCCCCAAAATGCATGCA"
        ] * 4
        cfg = ClusteringConfig.small_reads(
            acceptance=AcceptanceCriteria(min_score_ratio=0.9, min_overlap=30)
        )
        result = PaceClusterer(cfg).cluster(EstCollection.from_strings(reads))
        assert result.n_clusters == 2
        assert sorted(len(c) for c in result.clusters) == [4, 5]

    def test_singleton_input(self, small_config):
        result = PaceClusterer(small_config).cluster(
            EstCollection.from_strings(["ACGTACGTACGTACGTACGT"])
        )
        assert result.clusters == [[0]]
        assert result.counters.pairs_generated == 0
