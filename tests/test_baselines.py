"""Tests for the baseline comparators and the Table 1 scaling-law models."""

import pytest

from repro.baselines import (
    CAP3,
    MEMORY_BUDGET_MB,
    PHRAP,
    TABLE1_TOOLS,
    TIGR_ASSEMBLER,
    allpairs_cluster,
    cap3_like_cluster,
)
from repro.core import PaceClusterer
from repro.metrics import assess_clustering


class TestAllPairsBaseline:
    def test_same_partition_as_pace(self, small_benchmark, small_config):
        """Order cannot change the final partition (components of the
        accepted-pair graph) — only the work done."""
        pace = PaceClusterer(small_config).cluster(small_benchmark.collection)
        base = allpairs_cluster(small_benchmark.collection, small_config, rng=3)
        assert base.result.clusters == pace.clusters

    def test_materialises_every_pair(self, small_benchmark, small_config):
        base = allpairs_cluster(small_benchmark.collection, small_config)
        assert base.peak_pairs_buffered == base.result.counters.pairs_generated
        # On-demand PaCE buffers at most O(batch); the baseline holds all.
        assert base.peak_pairs_buffered > small_config.batchsize

    def test_arbitrary_order_aligns_more_than_best_first(
        self, small_benchmark, small_config
    ):
        """The §2 claim: decreasing-quality order lets the cluster test
        fire earlier, so fewer alignments are needed."""
        best = allpairs_cluster(small_benchmark.collection, small_config, order="best_first")
        arb = allpairs_cluster(small_benchmark.collection, small_config, order="arbitrary", rng=5)
        worst = allpairs_cluster(small_benchmark.collection, small_config, order="worst_first")
        assert best.result.counters.pairs_processed <= arb.result.counters.pairs_processed
        assert best.result.counters.pairs_processed <= worst.result.counters.pairs_processed

    def test_skip_disabled_is_fully_naive(self, small_benchmark, small_config):
        naive = allpairs_cluster(
            small_benchmark.collection, small_config, skip_clustered=False
        )
        c = naive.result.counters
        assert c.pairs_processed == c.pairs_generated
        assert c.pairs_skipped == 0

    def test_unknown_order_rejected(self, small_benchmark, small_config):
        with pytest.raises(ValueError, match="unknown order"):
            allpairs_cluster(small_benchmark.collection, small_config, order="sideways")


class TestCap3Like:
    def test_quality_at_least_pace(self, small_benchmark, small_config):
        """Full-DP scoring can only find overlaps the banded seed
        extension may miss: CC(cap3like) >= CC(pace) - epsilon, matching
        Table 2's 'CAP3 a hair better' profile."""
        truth = small_benchmark.true_clusters()
        n = small_benchmark.collection.n_ests
        pace_q = assess_clustering(
            PaceClusterer(small_config).cluster(small_benchmark.collection).clusters,
            truth,
            n,
        )
        cap_q = assess_clustering(
            cap3_like_cluster(small_benchmark.collection, small_config).result.clusters,
            truth,
            n,
        )
        assert cap_q.cc >= pace_q.cc - 1.0

    def test_quadratically_more_work_than_pace(self, small_benchmark, small_config):
        pace = PaceClusterer(small_config).cluster(small_benchmark.collection)
        cap = cap3_like_cluster(small_benchmark.collection, small_config)
        assert cap.result.counters.dp_cells > 3 * pace.counters.dp_cells
        assert cap.result.counters.pairs_processed >= pace.counters.pairs_processed

    def test_buffers_all_candidates(self, small_benchmark, small_config):
        cap = cap3_like_cluster(small_benchmark.collection, small_config)
        assert cap.peak_pairs_buffered == cap.result.counters.pairs_generated


class TestTable1Models:
    def test_anchor_points_reproduce_table1(self):
        """The exact run/X pattern of the paper's Table 1."""
        assert TIGR_ASSEMBLER.table1_cell(50_000) == "X"
        assert PHRAP.table1_cell(50_000) == "23 mins"
        assert CAP3.table1_cell(50_000) == "5.0 hrs"
        for tool in TABLE1_TOOLS:
            assert tool.table1_cell(81_414) == "X"

    def test_quadratic_scaling(self):
        assert CAP3.runtime_s(100_000) == pytest.approx(4 * CAP3.runtime_s(50_000))
        assert PHRAP.memory_mb(100_000) - PHRAP.memory_base_mb == pytest.approx(
            4 * (PHRAP.memory_mb(50_000) - PHRAP.memory_base_mb)
        )

    def test_small_inputs_fit(self):
        for tool in TABLE1_TOOLS:
            assert tool.fits(10_000, MEMORY_BUDGET_MB)
            assert tool.table1_cell(10_000) != "X"

    def test_minutes_formatting(self):
        assert PHRAP.table1_cell(50_000).endswith("mins")
        assert CAP3.table1_cell(50_000).endswith("hrs")
