"""Tests for the alignment substrate: scoring, banded extension vs the
unbanded reference, full-DP overlap alignment, pattern classification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import (
    AcceptanceCriteria,
    AlignmentResult,
    OverlapPattern,
    ScoringParams,
    classify_pattern,
    extend_overlap,
    extend_overlap_ref,
    global_align_score,
    overlap_align,
)
from repro.sequence import encode

P = ScoringParams()
dna = st.text(alphabet="ACGT", min_size=0, max_size=16)
codes = st.lists(st.integers(0, 3), min_size=0, max_size=16).map(
    lambda v: np.array(v, dtype=np.uint8)
)


class TestScoringParams:
    def test_defaults_valid(self):
        ScoringParams()

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            ScoringParams(match=0)
        with pytest.raises(ValueError):
            ScoringParams(mismatch=1)
        with pytest.raises(ValueError):
            ScoringParams(gap_open=0)
        with pytest.raises(ValueError):
            ScoringParams(gap_extend=1)


class TestAcceptance:
    def test_ratio_and_overlap_thresholds(self):
        crit = AcceptanceCriteria(min_score_ratio=0.9, min_overlap=10)
        good = AlignmentResult(
            score=P.match * 20, a_start=0, a_end=20, b_start=0, b_end=20,
            pattern=OverlapPattern.A_CONTAINS_B, dp_cells=0,
        )
        assert good.score_ratio(P) == pytest.approx(1.0)
        assert good.accepted(P, crit)
        short = AlignmentResult(
            score=P.match * 5, a_start=0, a_end=5, b_start=0, b_end=5,
            pattern=OverlapPattern.A_CONTAINS_B, dp_cells=0,
        )
        assert not short.accepted(P, crit)  # overlap too short
        weak = AlignmentResult(
            score=P.match * 20 * 0.5, a_start=0, a_end=20, b_start=0, b_end=20,
            pattern=OverlapPattern.A_CONTAINS_B, dp_cells=0,
        )
        assert not weak.accepted(P, crit)  # ratio too low

    def test_overlap_len_is_longer_span(self):
        r = AlignmentResult(0, 0, 10, 3, 9, OverlapPattern.A_CONTAINS_B, 0)
        assert r.overlap_len == 10

    def test_criteria_validation(self):
        with pytest.raises(ValueError):
            AcceptanceCriteria(min_score_ratio=1.5)
        with pytest.raises(ValueError):
            AcceptanceCriteria(min_overlap=0)


class TestBandedExtension:
    @given(codes, codes)
    @settings(max_examples=80, deadline=None)
    def test_wide_band_matches_unbanded_reference(self, x, y):
        got = extend_overlap(x, y, P, band=64)
        ref = extend_overlap_ref(x, y, P)
        assert got.score == pytest.approx(ref.score)

    @given(codes, codes, st.integers(0, 6))
    @settings(max_examples=60, deadline=None)
    def test_banded_never_beats_unbanded(self, x, y, band):
        got = extend_overlap(x, y, P, band=band)
        ref = extend_overlap_ref(x, y, P)
        assert got.score <= ref.score + 1e-9

    def test_perfect_match_consumes_both(self):
        x = encode("ACGTACGTAC")
        r = extend_overlap(x, x.copy(), P, band=3)
        assert r.score == P.match * len(x)
        assert r.consumed_x == r.consumed_y == len(x)

    def test_empty_side_short_circuits(self):
        r = extend_overlap(encode("ACGT"), np.array([], dtype=np.uint8), P, band=3)
        assert r == (0.0, 0, 0, 0)

    def test_dovetail_stops_at_shorter_string(self):
        x = encode("ACGTACGTACGTACGT")
        y = encode("ACGTA")
        r = extend_overlap(x, y, P, band=3)
        assert r.consumed_y == 5 and r.consumed_x == 5
        assert r.score == P.match * 5

    def test_single_mismatch_tolerated(self):
        x = encode("ACGTACGTAC")
        y = encode("ACGTTCGTAC")
        r = extend_overlap(x, y, P, band=3)
        assert r.score == P.match * 9 + P.mismatch
        assert r.consumed_x == r.consumed_y == 10

    def test_single_indel_tolerated(self):
        x = encode("ACGTACGTAC")
        y = encode("ACGTCGTAC")  # one deletion
        r = extend_overlap(x, y, P, band=3)
        assert r.score == P.match * 9 + P.gap_open
        assert r.consumed_x == 10 and r.consumed_y == 9

    def test_band_narrower_than_length_gap_fails_gracefully(self):
        x = encode("A" * 30)
        y = encode("C")
        r = extend_overlap(x, y, P, band=0)
        # No legal end in band: pessimistic pure-gap score, never positive.
        assert r.score < 0

    def test_dp_cells_reflect_band(self):
        x = encode("ACGT" * 10)
        narrow = extend_overlap(x, x.copy(), P, band=2)
        wide = extend_overlap(x, x.copy(), P, band=20)
        assert narrow.dp_cells < wide.dp_cells

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            extend_overlap(encode("A"), encode("A"), P, band=-1)


class TestGlobalAlign:
    def test_identity(self):
        x = encode("ACGTACGT")
        assert global_align_score(x, x.copy(), P) == P.match * 8

    def test_single_substitution(self):
        assert global_align_score(encode("ACGT"), encode("AGGT"), P) == 3 * P.match + P.mismatch

    def test_gap_vs_mismatch_choice(self):
        # len-1 vs len-2: forced gap.
        assert global_align_score(encode("A"), encode("AC"), P) == P.match + P.gap_open

    @given(codes.filter(lambda a: len(a) > 0))
    @settings(max_examples=30, deadline=None)
    def test_symmetry(self, x):
        y = (x + 1) % 4
        assert global_align_score(x, y, P) == pytest.approx(global_align_score(y, x, P))


class TestOverlapAlign:
    def test_clean_dovetail(self):
        a = encode("TTTTTACGTACGTA")
        b = encode("ACGTACGTACCCCC")
        res = overlap_align(a, b, P)
        assert res.pattern == OverlapPattern.SUFFIX_A_PREFIX_B
        assert res.a_start == 5 and res.a_end == 14
        assert res.b_start == 0
        assert res.ops is not None and set(res.ops) <= {"M"}

    def test_containment_both_ways(self):
        outer = encode("TTTTACGTACGTACGTTTT")
        inner = encode("ACGTACGTACGT")
        res = overlap_align(outer, inner, P)
        assert res.pattern == OverlapPattern.A_CONTAINS_B
        res2 = overlap_align(inner, outer, P)
        assert res2.pattern == OverlapPattern.B_CONTAINS_A

    def test_ops_consume_spans(self):
        a = encode("GGGACGTACGTT")
        b = encode("ACGTACGTTCCC")
        res = overlap_align(a, b, P)
        consumed_a = sum(1 for c in res.ops if c in "MXD")
        consumed_b = sum(1 for c in res.ops if c in "MXI")
        assert consumed_a == res.a_end - res.a_start
        assert consumed_b == res.b_end - res.b_start

    def test_score_matches_ops(self):
        a = encode("GGGACGTACGTT")
        b = encode("ACGTTCGTTCCC")
        res = overlap_align(a, b, P)
        score = 0.0
        prev = None
        for op in res.ops:
            if op == "M":
                score += P.match
            elif op == "X":
                score += P.mismatch
            else:
                score += P.gap_extend if prev == op else P.gap_open
            prev = op
        assert res.score == pytest.approx(score)

    @given(codes.filter(lambda a: len(a) >= 2), codes.filter(lambda a: len(a) >= 2))
    @settings(max_examples=50, deadline=None)
    def test_always_classifies(self, x, y):
        res = overlap_align(x, y, P)
        assert isinstance(res.pattern, OverlapPattern)


class TestClassifyPattern:
    def test_four_shapes(self):
        assert classify_pattern(5, 10, 10, 0, 5, 9) == OverlapPattern.SUFFIX_A_PREFIX_B
        assert classify_pattern(0, 5, 9, 5, 10, 10) == OverlapPattern.SUFFIX_B_PREFIX_A
        assert classify_pattern(2, 8, 10, 0, 6, 6) == OverlapPattern.A_CONTAINS_B
        assert classify_pattern(0, 10, 10, 2, 12, 14) == OverlapPattern.B_CONTAINS_A

    def test_containment_precedence(self):
        # Both full: flush-equal strings count as containment.
        assert classify_pattern(0, 8, 8, 0, 8, 8) == OverlapPattern.A_CONTAINS_B

    def test_impossible_spans_raise(self):
        with pytest.raises(AssertionError):
            classify_pattern(1, 5, 10, 1, 5, 10)
