"""Tests for alternative-splicing detection (the §3.3/§5 extension)."""

import numpy as np
import pytest

from repro.core.splicing import SplicingEvent, detect_splicing_events
from repro.sequence import EstCollection
from repro.util.rng import ensure_rng


def _random_dna(rng, n):
    return "".join("ACGT"[int(c)] for c in rng.integers(0, 4, n))


class TestDetectSplicing:
    def test_exon_skip_detected(self):
        rng = ensure_rng(3)
        exon1, exon2, exon3 = (_random_dna(rng, 60) for _ in range(3))
        full = exon1 + exon2 + exon3  # isoform keeping all exons
        skipped = exon1 + exon3  # isoform skipping exon2
        col = EstCollection.from_strings([full, skipped])
        events = detect_splicing_events(col, [[0, 1]], min_gap=40, min_flank=25)
        assert len(events) == 1
        ev = events[0]
        assert ev.gap_length == pytest.approx(60, abs=5)
        assert ev.gap_in == "b"  # EST b (the skipped isoform) lacks exon2
        assert 50 <= ev.a_position <= 70  # gap sits where exon2 started
        assert ev.identity_outside_gap > 0.95

    def test_no_event_on_plain_overlap(self):
        rng = ensure_rng(4)
        genome = _random_dna(rng, 150)
        col = EstCollection.from_strings([genome[:100], genome[40:140]])
        assert detect_splicing_events(col, [[0, 1]]) == []

    def test_short_gap_is_noise_not_splice(self):
        rng = ensure_rng(5)
        a = _random_dna(rng, 60)
        b = _random_dna(rng, 60)
        full = a + b
        small_gap = a + b[10:]  # only a 10 bp gap
        col = EstCollection.from_strings([full, small_gap])
        assert detect_splicing_events(col, [[0, 1]], min_gap=40) == []

    def test_border_gap_is_dovetail_not_splice(self):
        rng = ensure_rng(6)
        core = _random_dna(rng, 80)
        extended = core + _random_dna(rng, 60)
        col = EstCollection.from_strings([extended, core])
        # The 60 bp "gap" sits at the overlap border: flank rule kills it.
        assert detect_splicing_events(col, [[0, 1]], min_gap=40, min_flank=25) == []

    def test_pair_budget_respected(self):
        rng = ensure_rng(7)
        seqs = [_random_dna(rng, 50) for _ in range(6)]
        events = detect_splicing_events(
            EstCollection.from_strings(seqs), [[0, 1, 2, 3, 4, 5]],
            max_pairs_per_cluster=1,
        )
        # At most one pair was examined — no crash, bounded work.
        assert isinstance(events, list)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            SplicingEvent(0, 1, False, 50, "x", 10, 0.9)

    def test_end_to_end_with_simulated_isoforms(self):
        """Full pipeline: simulate a gene with exon skipping, cluster, and
        find the splice signature inside the recovered cluster."""
        from repro.core import ClusteringConfig, PaceClusterer
        from repro.simulate import (
            ErrorModel,
            ReadParams,
            alternative_transcripts,
            make_gene,
            primary_transcript,
            sample_gene_ests,
        )

        rng = ensure_rng(11)
        # Geometry matters twice over: the flanking exons must exceed the
        # read length (so single-exon reads bridge the isoforms into one
        # cluster), while the skipped middle exon must be *shorter* than a
        # read minus both flanks (so some full-isoform read spans it and
        # the skip gap is observable inside an overlap).
        from repro.simulate.genes import GeneModel, random_genome

        gene = GeneModel(
            gene_id=0,
            exons=(
                random_genome(200, rng).tobytes(),
                random_genome(70, rng).tobytes(),
                random_genome(200, rng).tobytes(),
            ),
            intron_lengths=(100, 100),
            reverse_strand=False,
        )
        forms = [primary_transcript(gene)] + alternative_transcripts(
            gene, rng, max_isoforms=1, skip_prob=1.0
        )
        assert len(forms) == 2
        reads = sample_gene_ests(
            forms, 20, ReadParams(mean_length=150, sd_length=10, min_length=80),
            ErrorModel.perfect(), rng,
        )
        iso_of = [r.isoform_id for r in reads]
        codes = [r.codes for r in reads]
        # Two guaranteed junction-spanning reads: exon2 starts at 200 and
        # ends at 270 on the full transcript; the skip isoform joins exon1
        # to exon3 at 200.
        full_span = forms[0].sequence[140:330]  # exon2 with 60 bp flanks
        skip_span = forms[1].sequence[140:260]  # the junction with flanks
        codes += [full_span.copy(), skip_span.copy()]
        iso_of += [0, 1]
        col = EstCollection(codes)
        result = PaceClusterer(ClusteringConfig.small_reads()).cluster(col)
        events = detect_splicing_events(
            col, result.clusters, min_gap=55, min_flank=25,
            max_pairs_per_cluster=2000,
        )
        # Any detected event must couple reads of *different* isoforms.
        for ev in events:
            assert iso_of[ev.est_a] != iso_of[ev.est_b]
        # The two crafted junction-spanning reads co-cluster (they share
        # 60 bp of exon1 flank exactly), so the ~70 bp skip gap between
        # them must be reported.
        labels = result.labels()
        assert labels[len(codes) - 2] == labels[len(codes) - 1]
        assert events, "no splice events found despite junction-spanning pair"
        assert any(55 <= ev.gap_length <= 85 for ev in events)
