"""Tests for the greedy k-difference (Landau-Vishkin) extension engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import AcceptanceCriteria, PairAligner, ScoringParams, extend_overlap
from repro.align.kdiff import edit_distance_extension, kdiff_extend, score_ops
from repro.sequence import EstCollection, encode

P = ScoringParams()
codes = st.lists(st.integers(0, 3), min_size=0, max_size=14).map(
    lambda v: np.array(v, dtype=np.uint8)
)


class TestKdiffExtend:
    def test_perfect_match(self):
        x = encode("ACGTACGTAC")
        r = kdiff_extend(x, x.copy(), P, 3)
        assert r.score == P.match * 10
        assert r.consumed_x == r.consumed_y == 10

    def test_single_substitution(self):
        x = encode("ACGTACGTAC")
        y = encode("ACGTTCGTAC")
        r = kdiff_extend(x, y, P, 3)
        assert r.score == P.match * 9 + P.mismatch
        assert r.consumed_x == r.consumed_y == 10

    def test_single_indel(self):
        x = encode("ACGTACGTAC")
        y = encode("ACGTCGTAC")
        r = kdiff_extend(x, y, P, 3)
        assert r.score == P.match * 9 + P.gap_open
        assert (r.consumed_x, r.consumed_y) == (10, 9)

    def test_dovetail_stops_at_short_string(self):
        x = encode("ACGTACGTACGTACGT")
        y = encode("ACGTA")
        r = kdiff_extend(x, y, P, 3)
        assert (r.consumed_x, r.consumed_y) == (5, 5)

    def test_empty_side(self):
        r = kdiff_extend(encode("ACGT"), np.array([], dtype=np.uint8), P, 3)
        assert r == (0.0, 0, 0, 0)

    def test_budget_exhausted_fallback_rejects(self):
        x = encode("AAAAAAAAAA")
        y = encode("CCCCCCCCCC")
        r = kdiff_extend(x, y, P, 2)
        assert r.score < 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            kdiff_extend(encode("A"), encode("A"), P, -1)

    @given(codes, codes)
    @settings(max_examples=80, deadline=None)
    def test_edit_count_matches_reference_dp(self, x, y):
        """The minimum-edit objective agrees with the full-DP oracle."""
        ref_edits, _ri, _rj = edit_distance_extension(x, y)
        budget = max(len(x), len(y)) + 1
        r = kdiff_extend(x, y, P, budget)
        # Recover edits from the score path by recomputing both ways is
        # awkward; instead assert reachability: with budget == ref_edits
        # the extension succeeds, with budget == ref_edits - 1 it fails.
        ok = kdiff_extend(x, y, P, ref_edits)
        assert ok.consumed_x == len(x) or ok.consumed_y == len(y) or len(x) == 0 or len(y) == 0
        if ref_edits > 0 and len(x) > 0 and len(y) > 0:
            short = kdiff_extend(x, y, P, ref_edits - 1)
            reached = short.consumed_x == len(x) or short.consumed_y == len(y)
            assert not reached or short.score < 0

    @given(codes.filter(lambda a: len(a) >= 4))
    @settings(max_examples=40, deadline=None)
    def test_score_never_exceeds_banded_optimum(self, x):
        """Min-edit alignment's affine score lower-bounds the optimal."""
        rng = np.random.default_rng(int(x.sum()) + len(x))
        y = x.copy()
        flip = rng.random(len(y)) < 0.15
        y[flip] = (y[flip] + 1) % 4
        kd = kdiff_extend(x, y, P, len(x))
        opt = extend_overlap(x, y, P, band=len(x) + len(y))
        assert kd.score <= opt.score + 1e-9

    def test_high_identity_agrees_with_banded(self):
        rng = np.random.default_rng(5)
        x = rng.integers(0, 4, 200).astype(np.uint8)
        y = x.copy()
        pos = rng.choice(200, size=3, replace=False)
        y[pos] = (y[pos] + 1) % 4
        kd = kdiff_extend(x, y, P, 10)
        opt = extend_overlap(x, y, P, band=10)
        assert kd.score == pytest.approx(opt.score)

    def test_work_scales_with_errors_not_length(self):
        rng = np.random.default_rng(6)
        x = rng.integers(0, 4, 400).astype(np.uint8)
        y = x.copy()
        y[100] = (y[100] + 1) % 4
        kd = kdiff_extend(x, y, P, 12)
        banded = extend_overlap(x, y, P, band=12)
        assert kd.dp_cells < banded.dp_cells / 50


class TestScoreOps:
    def test_affine_gap_accounting(self):
        x = encode("AACC").tolist()
        y = encode("AA").tolist()
        # Two matches then a 2-run gap: open + extend.
        assert score_ops("MMDD", P, x, y) == 2 * P.match + P.gap_open + P.gap_extend

    def test_m_columns_rechecked(self):
        x = encode("AA").tolist()
        y = encode("AC").tolist()
        # Claimed "MM" but second column mismatches: scored as mismatch.
        assert score_ops("MM", P, x, y) == P.match + P.mismatch

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            score_ops("Z", P, [0], [0])


class TestKdiffInPairAligner:
    def test_engine_selection(self, small_benchmark):
        col = small_benchmark.collection
        with pytest.raises(ValueError, match="unknown extension engine"):
            PairAligner(col, engine="magic")

    def test_kdiff_pipeline_quality(self, small_benchmark, small_config):
        """Clustering with the kdiff engine matches banded-engine quality."""
        from repro.cluster import ClusterManager, greedy_cluster
        from repro.metrics import assess_clustering
        from repro.pairs import SaPairGenerator
        from repro.suffix import SuffixArrayGst

        col = small_benchmark.collection
        truth = small_benchmark.true_clusters()
        gst = SuffixArrayGst.build(col)
        results = {}
        for engine in ("banded", "kdiff"):
            aligner = PairAligner(
                col,
                criteria=AcceptanceCriteria(min_score_ratio=0.8, min_overlap=30),
                engine=engine,
            )
            mgr = ClusterManager(col.n_ests)
            greedy_cluster(
                SaPairGenerator(gst, psi=small_config.psi).pairs(), aligner, mgr
            )
            results[engine] = assess_clustering(mgr.clusters(), truth, col.n_ests)
        assert abs(results["banded"].cc - results["kdiff"].cc) < 2.0
