"""Tests for repro.sequence: alphabet, reverse complement, FASTA,
EstCollection — including hypothesis properties on the encoding layer."""

import io

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sequence import (
    ALPHABET,
    LAMBDA,
    SIGMA,
    EstCollection,
    FastaRecord,
    decode,
    encode,
    read_fasta,
    reverse_complement,
    reverse_complement_str,
    write_fasta,
)
from repro.sequence.alphabet import complement_codes, is_valid_codes
from repro.sequence.fasta import parse_fasta, records_to_string
from repro.sequence.seq import canonical_codes

dna = st.text(alphabet="ACGT", min_size=1, max_size=60)


class TestAlphabet:
    def test_encode_decode_roundtrip_basic(self):
        assert decode(encode("ACGT")) == "ACGT"

    @given(dna)
    def test_encode_decode_roundtrip(self, s):
        assert decode(encode(s)) == s

    def test_encode_is_case_insensitive(self):
        assert np.array_equal(encode("acgt"), encode("ACGT"))

    def test_encode_rejects_ambiguity_codes(self):
        with pytest.raises(ValueError, match="invalid DNA character"):
            encode("ACGN")

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            decode(np.array([0, 4], dtype=np.uint8))

    def test_complement_is_three_minus_code(self):
        codes = encode("ACGT")
        assert np.array_equal(complement_codes(codes), encode("TGCA"))

    @given(dna)
    def test_complement_involution(self, s):
        codes = encode(s)
        assert np.array_equal(complement_codes(complement_codes(codes)), codes)

    def test_lambda_is_outside_sigma(self):
        assert LAMBDA == SIGMA == 4
        assert len(ALPHABET) == 4

    def test_is_valid_codes(self):
        assert is_valid_codes(encode("ACGT"))
        assert is_valid_codes(np.array([], dtype=np.uint8))
        assert not is_valid_codes(np.array([5], dtype=np.uint8))


class TestReverseComplement:
    def test_known_value(self):
        assert reverse_complement_str("AACGT") == "ACGTT"

    @given(dna)
    def test_involution(self, s):
        assert reverse_complement_str(reverse_complement_str(s)) == s

    @given(dna)
    def test_preserves_length(self, s):
        assert len(reverse_complement(encode(s))) == len(s)

    @given(dna, dna)
    def test_antihomomorphism(self, a, b):
        # rc(a + b) == rc(b) + rc(a)
        assert reverse_complement_str(a + b) == (
            reverse_complement_str(b) + reverse_complement_str(a)
        )

    @given(dna)
    def test_canonical_is_min_of_strand_pair(self, s):
        codes = encode(s)
        canon = canonical_codes(codes)
        options = {decode(codes), reverse_complement_str(s)}
        assert decode(canon) == min(options)


class TestFasta:
    def test_roundtrip_via_file(self, tmp_path):
        records = [
            FastaRecord("r1", "ACGTACGT", "first read"),
            FastaRecord("r2", "TTTT"),
        ]
        path = tmp_path / "test.fa"
        write_fasta(records, path, width=4)
        back = read_fasta(path)
        assert back == records

    def test_wrapping_respected(self):
        text = records_to_string([FastaRecord("x", "ACGTACGTAC")], width=4)
        assert text == ">x\nACGT\nACGT\nAC\n"

    def test_parse_multiline_and_description(self):
        handle = io.StringIO(">name desc words\nACGT\nacgt\n>n2\nTT\n")
        recs = list(parse_fasta(handle))
        assert recs[0] == FastaRecord("name", "ACGTacgt", "desc words")
        assert recs[1].name == "n2"

    def test_parse_rejects_headerless_sequence(self):
        with pytest.raises(ValueError, match="before first header"):
            list(parse_fasta(io.StringIO("ACGT\n")))

    def test_parse_rejects_empty_header(self):
        with pytest.raises(ValueError, match="empty FASTA header"):
            list(parse_fasta(io.StringIO(">\nACGT\n")))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            FastaRecord("", "ACGT")

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            write_fasta([], io.StringIO(), width=0)

    def test_blank_lines_skipped(self):
        recs = list(parse_fasta(io.StringIO(">a\n\nAC\n\nGT\n")))
        assert recs[0].sequence == "ACGT"


class TestEstCollection:
    def test_basic_shape(self):
        col = EstCollection.from_strings(["ACGT", "GG"])
        assert col.n_ests == 2
        assert col.n_strings == 4
        assert col.total_chars == 6
        assert col.mean_length == 3.0
        assert len(col) == 2

    def test_interleaved_strand_convention(self):
        col = EstCollection.from_strings(["AACG"])
        assert decode(col.string(0)) == "AACG"
        assert decode(col.string(1)) == reverse_complement_str("AACG")
        assert col.est_of_string(1) == 0
        assert col.is_complemented(1) and not col.is_complemented(0)

    @given(st.lists(dna, min_size=1, max_size=5))
    def test_strings_roundtrip(self, seqs):
        col = EstCollection.from_strings(seqs)
        for i, s in enumerate(seqs):
            assert col.est_string(i) == s
            assert col.length(2 * i) == len(s)

    def test_left_extension(self):
        col = EstCollection.from_strings(["ACGT"])
        assert col.left_extension(0, 0) == LAMBDA
        assert col.left_extension(0, 1) == 0  # 'A' precedes offset 1
        assert col.left_extension(0, 3) == 2  # 'G' precedes offset 3

    def test_names_default_and_custom(self):
        assert EstCollection.from_strings(["AC"]).names == ["EST0"]
        col = EstCollection.from_strings(["AC"], names=["x"])
        assert col.names == ["x"]

    def test_from_records(self):
        col = EstCollection.from_records([FastaRecord("r", "ACGT")])
        assert col.names == ["r"] and col.est_string(0) == "ACGT"

    def test_empty_collection_rejected(self):
        with pytest.raises(ValueError):
            EstCollection([])

    def test_empty_est_rejected(self):
        with pytest.raises(ValueError):
            EstCollection.from_strings(["ACG", ""])

    def test_name_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            EstCollection.from_strings(["AC"], names=["a", "b"])

    def test_index_bounds(self):
        col = EstCollection.from_strings(["AC"])
        with pytest.raises(IndexError):
            col.string(2)
        with pytest.raises(IndexError):
            col.est(1)
        with pytest.raises(IndexError):
            col.length(-1)

    def test_buffer_is_readonly(self):
        col = EstCollection.from_strings(["ACGT"])
        with pytest.raises(ValueError):
            col.string(0)[0] = 3

    @given(st.lists(dna, min_size=1, max_size=4))
    def test_sa_text_sentinels_unique_and_small(self, seqs):
        col = EstCollection.from_strings(seqs)
        text, starts = col.sa_text()
        two_n = col.n_strings
        sentinels = [int(text[starts[k + 1] - 1]) for k in range(two_n)]
        assert sentinels == list(range(two_n))  # unique, in order
        for k in range(two_n):
            body = text[starts[k] : starts[k + 1] - 1]
            assert (body >= two_n).all()  # nucleotides shifted above all sentinels
            assert np.array_equal(body - two_n, col.string(k))
