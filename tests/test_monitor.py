"""Tests for the live run monitor: state aggregation, Prometheus
rendering, the HTTP endpoint, engine integration, and the
issue-acceptance scenario — an injected-fault multiprocessing run whose
/metrics endpoint reports the loss *before* the run completes.
"""

from __future__ import annotations

import io
import json
import signal
import threading
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro.core import PaceClusterer
from repro.parallel import (
    FaultPlan,
    FaultSpec,
    FaultTolerance,
    cluster_multiprocessing,
    simulate_clustering,
)
from repro.telemetry import (
    LiveRunState,
    LiveSample,
    ResourceSampler,
    RunMonitor,
    render_progress_table,
    render_prometheus,
    replay_live_records,
    validate_records,
)

HARD_DEADLINE_S = 120


@contextmanager
def hard_deadline(seconds: int = HARD_DEADLINE_S):
    """Fail (instead of hanging CI) if the body runs too long."""

    def on_alarm(signum, frame):
        raise TimeoutError(f"monitored run exceeded {seconds}s — runtime hung")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def _scrape(port: int, path: str = "/metrics") -> str:
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=5) as r:
        return r.read().decode()


# --------------------------------------------------------------------- #
# resource sampling
# --------------------------------------------------------------------- #


class TestResourceSampler:
    def test_readings_are_sane(self):
        s = ResourceSampler()
        rss = s.rss_bytes()
        peak = s.peak_rss_bytes()
        assert rss > 1024 * 1024  # a CPython process is bigger than 1 MiB
        assert peak >= rss // 2  # same order; peak can lag statm slightly
        assert s.cpu_seconds() >= 0.0

    def test_ru_maxrss_is_kib_on_linux(self):
        # getrusage reports ru_maxrss in KiB on Linux: 100 MiB -> bytes.
        from repro.telemetry.live import _ru_maxrss_bytes

        assert _ru_maxrss_bytes(102_400, platform="linux") == 100 * 1024 * 1024

    def test_ru_maxrss_is_bytes_on_macos(self):
        # ...but in bytes on macOS: the value passes through unscaled.
        # (The old heuristic multiplied anything under 4 GiB by 1024.)
        from repro.telemetry.live import _ru_maxrss_bytes

        assert _ru_maxrss_bytes(104_857_600, platform="darwin") == 104_857_600
        # Large Linux readings must still scale (no plausibility cutoff).
        big = 8 * 1024 * 1024 * 1024  # an 8 TiB reading, in KiB
        assert _ru_maxrss_bytes(big, platform="linux") == big * 1024


# --------------------------------------------------------------------- #
# state aggregation
# --------------------------------------------------------------------- #


class TestLiveRunState:
    def test_update_folds_samples(self):
        st = LiveRunState(2, engine="test")
        st.update(LiveSample(slave_id=0, ts=1.0, pairs_generated=5, gen_position=0.5))
        st.update(LiveSample(slave_id=0, ts=2.0, pairs_generated=9, gen_position=0.8))
        view = st.slaves[0]
        assert view.samples == 2
        assert view.pairs_generated == 9
        assert view.last_ts == 2.0
        assert st.now == 2.0
        assert view.state == "running"
        assert view.position == pytest.approx(0.8)

    def test_progress_averages_and_caps(self):
        st = LiveRunState(2, engine="test")
        assert st.progress == 0.0
        st.update(LiveSample(slave_id=0, ts=1.0, gen_position=1.0, exhausted=True))
        st.update(LiveSample(slave_id=1, ts=1.0, gen_position=0.5))
        assert st.progress == pytest.approx(0.75)
        # Generators done but a backlog remains: held at 0.99.
        st.update(LiveSample(slave_id=1, ts=2.0, gen_position=1.0, exhausted=True))
        st.set_master(workbuf_depth=4)
        assert st.progress == pytest.approx(0.99)
        # Only finish() may claim 1.0.
        st.set_master(workbuf_depth=0)
        assert st.progress <= 0.999
        st.finish(3.0)
        assert st.progress == 1.0
        assert st.eta_seconds() == 0.0
        assert all(v.state == "stopped" for v in st.slaves.values())

    def test_eta_proportional(self):
        st = LiveRunState(1, engine="test")
        st.update(LiveSample(slave_id=0, ts=10.0, gen_position=0.5))
        assert st.eta_seconds() == pytest.approx(10.0)
        early = LiveRunState(1, engine="test")
        early.update(LiveSample(slave_id=0, ts=0.1, gen_position=0.01))
        assert early.eta_seconds() is None

    def test_lost_and_revived(self):
        st = LiveRunState(2, engine="test")
        st.slave_lost(0)
        assert st.slaves[0].state == "lost"
        assert st.slaves[0].position == 1.0  # cannot produce further work
        assert st.fault_counters == {"slaves_lost": 1}
        st.slave_revived(0)
        assert st.slaves[0].state == "running"
        assert st.fault_counters == {"slaves_lost": 1, "restarts": 1}
        # A replacement incarnation's sample also clears the flag.
        st.slave_lost(0)
        st.update(LiveSample(slave_id=0, ts=1.0, incarnation=1))
        assert not st.slaves[0].lost

    def test_stragglers_flag_stale_running_slaves(self):
        st = LiveRunState(2, engine="test", straggler_after=5.0)
        st.update(LiveSample(slave_id=0, ts=1.0))
        st.update(LiveSample(slave_id=1, ts=1.0))
        st.set_master(ts=10.0)
        assert st.stragglers() == [0, 1]
        st.update(LiveSample(slave_id=1, ts=9.5))
        assert st.stragglers() == [0]
        st.slave_stopped(0)  # stopped slaves are never stragglers
        assert st.stragglers() == []


class TestReplay:
    def test_round_trip_through_records(self):
        meta = {
            "kind": "meta", "schema": "repro-telemetry/2", "stream": "live",
            "run_id": "r1", "n_processors": 3, "engine": "multiprocessing",
            "clock": "wall",
        }
        records = [meta]
        records.append(LiveSample(slave_id=0, ts=1.0, pairs_generated=4).as_record())
        records.append(LiveSample(slave_id=1, ts=0.5, pairs_generated=2).as_record())
        records.append(
            {
                "kind": "live_state", "ts": 1.5, "progress": 0.4,
                "workbuf_depth": 2, "messages": 9, "merges": 3,
                "faults": {"slaves_lost": 1}, "lost": [1], "finished": False,
            }
        )
        st = replay_live_records(records)
        assert st.run_id == "r1"
        assert st.n_slaves == 2
        assert st.slaves[0].pairs_generated == 4
        assert st.slaves[1].lost
        assert st.fault_counters == {"slaves_lost": 1}
        assert not st.finished
        # A later state record revives slave 1 and finishes the run.
        records.append(
            {
                "kind": "live_state", "ts": 2.0, "progress": 1.0,
                "workbuf_depth": 0, "messages": 12, "merges": 5,
                "faults": {"slaves_lost": 1, "restarts": 1}, "lost": [],
                "finished": True,
            }
        )
        st = replay_live_records(records)
        assert not st.slaves[1].lost
        assert st.finished and st.progress == 1.0
        assert st.merges == 5

    def test_sample_record_round_trip(self):
        s = LiveSample(
            slave_id=3, ts=2.5, incarnation=1, rss_bytes=1000,
            cpu_seconds=0.5, pairs_generated=7, alignments=6, dp_cells=99,
            pairbuf_depth=2, gen_position=0.7, exhausted=False,
        )
        assert LiveSample.from_record(s.as_record()) == s
        m = LiveSample(slave_id=-1, ts=1.0)
        assert m.actor == "master"
        assert LiveSample.from_record(m.as_record()).slave_id == -1


# --------------------------------------------------------------------- #
# rendering
# --------------------------------------------------------------------- #


def _busy_state() -> LiveRunState:
    st = LiveRunState(2, run_id="abc123", engine="multiprocessing")
    st.update(
        LiveSample(
            slave_id=0, ts=2.0, rss_bytes=50 << 20, cpu_seconds=1.5,
            pairs_generated=100, alignments=90, gen_position=0.6,
        )
    )
    st.update(LiveSample(slave_id=1, ts=2.0, gen_position=0.4))
    st.update(LiveSample(slave_id=-1, ts=2.1, rss_bytes=60 << 20, cpu_seconds=0.3))
    st.set_master(workbuf_depth=5, messages=40, merges=12, pairs_dispatched=80)
    st.record_fault("slaves_lost")
    return st


class TestPrometheusRendering:
    def test_metric_families(self):
        text = render_prometheus(_busy_state())
        assert "# TYPE pace_run_progress_ratio gauge" in text
        assert "pace_run_finished 0" in text
        assert "pace_workbuf_depth 5" in text
        assert "pace_merges_total 12" in text
        assert "pace_fault_slaves_lost_total 1" in text
        assert 'pace_slave_pairs_generated_total{slave="0"} 100' in text
        assert 'pace_slave_progress_ratio{slave="1"} 0.4' in text
        assert "pace_master_rss_bytes" in text
        # One TYPE line per family even with two labelled series.
        assert text.count("# TYPE pace_slave_up gauge") == 1

    def test_naming_conventions(self):
        """Every metric is pace_-prefixed; counters end in _total."""
        for line in render_prometheus(_busy_state()).splitlines():
            if line.startswith("# TYPE "):
                _, _, name, mtype = line.split()
                assert name.startswith("pace_")
                if mtype == "counter":
                    assert name.endswith("_total")


class TestProgressTable:
    def test_renders_all_slaves_and_faults(self):
        table = render_progress_table(_busy_state().as_dict())
        assert "slave0" in table and "slave1" in table
        assert "master" in table
        assert "engine=multiprocessing" in table
        assert "faults: slaves_lost=1" in table
        assert "[" in table and "#" in table  # the progress bar

    def test_finished_state(self):
        st = _busy_state()
        st.finish(3.0)
        table = render_progress_table(st.as_dict())
        assert "100.0%" in table and "finished" in table


# --------------------------------------------------------------------- #
# the HTTP endpoint
# --------------------------------------------------------------------- #


class TestEndpoint:
    def test_serves_metrics_state_healthz(self):
        mon = RunMonitor(port=0, interval=0.1)
        try:
            st = mon.begin_run(2, engine="test")
            st.update(LiveSample(slave_id=0, ts=1.0, gen_position=0.5))
            port = mon.port
            assert port
            assert "pace_up 1" in _scrape(port)
            assert json.loads(_scrape(port, "/healthz")) == {"status": "ok"}
            state = json.loads(_scrape(port, "/state"))
            assert state["n_slaves"] == 2
            assert len(state["slaves"]) == 2
            with pytest.raises(urllib.error.HTTPError):
                _scrape(port, "/nope")
        finally:
            mon.close()
        assert mon.port is None

    def test_close_is_idempotent(self):
        mon = RunMonitor(port=0)
        mon.begin_run(1, engine="test")
        mon.close()
        mon.close()

    def test_close_skips_linger_when_run_never_finished(self):
        # A run that died (finish() never ran) must not block the caller's
        # exception path watching a dead endpoint.
        import time

        mon = RunMonitor(port=0)
        mon.begin_run(1, engine="test")
        t0 = time.monotonic()
        mon.close(linger=30.0)
        assert time.monotonic() - t0 < 5.0

    def test_close_lingers_only_on_clean_completion(self):
        import time

        mon = RunMonitor(port=0)
        mon.begin_run(1, engine="test")
        mon.finish(1.0)
        t0 = time.monotonic()
        mon.close(linger=0.3)
        assert time.monotonic() - t0 >= 0.3

    def test_double_close_after_fault_path(self):
        # The engine finally block and the CLI both call close(); the
        # second call must be a no-op even with a linger request.
        mon = RunMonitor(port=0)
        mon.begin_run(1, engine="test")
        mon.close()
        mon.close(linger=30.0)
        assert mon.port is None

    def test_live_out_stream_validates(self):
        buf = io.StringIO()
        mon = RunMonitor(live_out=buf, interval=0.001)
        mon.begin_run(1, engine="test")
        mon.on_sample(LiveSample(slave_id=0, ts=0.5, gen_position=0.5))
        mon.maybe_report(0.6)
        mon.finish(1.0)
        mon.close()
        records = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert validate_records(records) == []
        st = replay_live_records(records)
        assert st.finished
        assert st.slaves[0].samples == 1

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError, match="interval"):
            RunMonitor(interval=0.0)


# --------------------------------------------------------------------- #
# engine integration
# --------------------------------------------------------------------- #


class TestEngineIntegration:
    def test_sequential_pipeline_reports(self, small_benchmark, small_config):
        buf = io.StringIO()
        mon = RunMonitor(live_out=buf, interval=0.001)
        PaceClusterer(small_config).cluster(small_benchmark.collection, monitor=mon)
        mon.close()
        records = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert validate_records(records) == []
        st = replay_live_records(records)
        assert st.engine == "sequential"
        assert st.finished and st.progress == 1.0
        assert st.slaves[0].samples > 0

    def test_simulated_machine_reports_virtual_time(
        self, small_benchmark, small_config
    ):
        buf = io.StringIO()
        mon = RunMonitor(live_out=buf, interval=0.05)
        rep = simulate_clustering(
            small_benchmark.collection, small_config, n_processors=3, monitor=mon
        )
        mon.close()
        records = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert validate_records(records) == []
        assert records[0]["clock"] == "virtual"
        st = replay_live_records(records)
        assert st.finished
        # Virtual timestamps: the newest sample is within the virtual span.
        assert 0.0 < st.now <= rep.total_time + 1e-9
        assert set(st.slaves) == {0, 1}
        assert all(v.samples > 0 for v in st.slaves.values())

    def test_mp_run_with_endpoint(self, small_benchmark, small_config, tmp_path):
        live = tmp_path / "live.jsonl"
        mon = RunMonitor(port=0, live_out=live, interval=0.02)
        with hard_deadline():
            res = cluster_multiprocessing(
                small_benchmark.collection,
                small_config,
                n_processors=3,
                monitor=mon,
            )
        try:
            final = json.loads(_scrape(mon.port, "/state"))
        finally:
            mon.close()
        assert res.clusters
        assert final["finished"] and final["progress"] == 1.0
        assert {v["slave_id"] for v in final["slaves"]} == {0, 1}
        records = [json.loads(line) for line in live.read_text().splitlines()]
        assert validate_records(records) == []
        st = replay_live_records(records)
        assert st.finished
        assert all(v.samples > 0 for v in st.slaves.values())


# --------------------------------------------------------------------- #
# the acceptance scenario: a lost slave is visible mid-run
# --------------------------------------------------------------------- #


class TestFaultVisibility:
    def test_injected_fault_surfaces_on_endpoint_before_completion(
        self, small_benchmark, small_config, tmp_path
    ):
        """Kill slave 0 before bootstrap; scrape /metrics continuously.
        Some mid-run scrape (pace_run_finished 0) must already carry the
        fault counter and per-slave progress series, and the final table
        must render every slave."""
        live = tmp_path / "live.jsonl"
        mon = RunMonitor(port=0, live_out=live, interval=0.02)
        mon.begin_run(2, engine="multiprocessing")
        port = mon.port
        scrapes: list[str] = []
        stop = threading.Event()

        def scraper():
            while not stop.is_set():
                try:
                    scrapes.append(_scrape(port))
                except OSError:
                    pass
                stop.wait(0.01)

        thread = threading.Thread(target=scraper, daemon=True)
        thread.start()
        plan = FaultPlan.of(
            FaultSpec(slave_id=0, kind="kill", at_message=0, incarnation=None)
        )
        try:
            with hard_deadline():
                res = cluster_multiprocessing(
                    small_benchmark.collection,
                    small_config,
                    n_processors=3,
                    faults=plan,
                    tolerance=FaultTolerance(
                        slave_timeout=1.0, poll_interval=0.02, max_restarts=0
                    ),
                    monitor=mon,
                )
        finally:
            stop.set()
            thread.join(timeout=5)
        assert res.faults.slaves_lost >= 1

        def lost_count(text: str) -> int:
            for line in text.splitlines():
                if line.startswith("pace_fault_slaves_lost_total "):
                    return int(float(line.split()[1]))
            return 0

        midrun = [s for s in scrapes if "pace_run_finished 0" in s]
        assert midrun, "endpoint was never scraped mid-run"
        witnessed = [s for s in midrun if lost_count(s) >= 1]
        assert witnessed, "no mid-run scrape reported the lost slave"
        # The same scrape carries per-slave progress and liveness series.
        w = witnessed[-1]
        assert 'pace_slave_progress_ratio{slave="0"}' in w
        assert 'pace_slave_progress_ratio{slave="1"}' in w
        assert 'pace_slave_up{slave="0"} 0' in w

        final_state = json.loads(_scrape(port, "/state"))
        mon.close()
        assert final_state["finished"]
        assert final_state["faults"]["slaves_lost"] >= 1

        # `pace-est monitor` rendering: every slave appears in the table.
        table = render_progress_table(final_state)
        assert "slave0" in table and "slave1" in table
        assert "slaves_lost=1" in table

        # The streamed live file replays to the same picture.
        records = [json.loads(line) for line in live.read_text().splitlines()]
        assert validate_records(records) == []
        st = replay_live_records(records)
        assert st.fault_counters.get("slaves_lost", 0) >= 1
        assert st.slaves[0].state == "lost"


# --------------------------------------------------------------------- #
# monitor CLI
# --------------------------------------------------------------------- #


class TestMonitorCli:
    def test_monitor_renders_live_file(self, tmp_path, capsys):
        from repro.cli import main

        buf = io.StringIO()
        mon = RunMonitor(live_out=buf, interval=0.001, run_id="feedbeef")
        mon.begin_run(2, engine="test")
        mon.on_sample(LiveSample(slave_id=0, ts=0.5, gen_position=0.5))
        mon.on_sample(LiveSample(slave_id=1, ts=0.5, gen_position=0.25))
        mon.finish(1.0)
        mon.close()
        path = tmp_path / "live.jsonl"
        path.write_text(buf.getvalue())
        assert main(["monitor", str(path)]) == 0
        out = capsys.readouterr().out
        assert "feedbeef" in out
        assert "slave0" in out and "slave1" in out
        assert "100.0%" in out
