"""Parallel clustering: the simulated IBM SP and real processes.

Run:  python examples/parallel_scaling.py

Demonstrates the two parallel engines sharing one protocol implementation:

1. the deterministic simulated multiprocessor sweeps processor counts and
   reports virtual run-times and speedups (the engine behind the paper's
   Fig. 6 / Table 3 reproductions);
2. the multiprocessing backend runs the identical master-slave protocol
   over real OS processes and must produce the identical partition.
"""

from repro import ClusteringConfig, PaceClusterer
from repro.parallel import cluster_multiprocessing, simulate_clustering
from repro.simulate import BenchmarkParams, make_benchmark
from repro.suffix import SuffixArrayGst


def main() -> None:
    bench = make_benchmark(
        BenchmarkParams.small(n_genes=20, mean_ests_per_gene=10), rng=5
    )
    config = ClusteringConfig.small_reads(batchsize=10)
    print(f"dataset: {bench.n_ests} ESTs, {bench.collection.total_chars:,} bases")

    sequential = PaceClusterer(config).cluster(bench.collection)
    print(f"sequential: {sequential.summary()}\n")

    # --- simulated machine sweep ------------------------------------------
    gst = SuffixArrayGst.build(bench.collection)  # share the index
    print(f"{'p':>4s} {'virtual time':>13s} {'speedup':>8s} {'messages':>9s} "
          f"{'master busy':>12s} {'partition == sequential':>24s}")
    base_time = None
    for p in (2, 4, 8, 16, 32):
        rep = simulate_clustering(bench.collection, config, n_processors=p, gst=gst)
        if base_time is None:
            base_time = rep.total_time
        same = rep.result.clusters == sequential.clusters
        print(
            f"{p:4d} {rep.total_time:12.4f}s {base_time / rep.total_time:7.2f}x "
            f"{rep.messages_exchanged:9d} {rep.master_busy_fraction:11.2%} "
            f"{str(same):>24s}"
        )

    # --- real processes ----------------------------------------------------
    print("\nmultiprocessing backend (1 master + 2 slave processes)...")
    mp_result = cluster_multiprocessing(bench.collection, config, n_processors=3)
    print(f"multiprocessing: {mp_result.summary()}")
    print(f"partition identical to sequential: "
          f"{mp_result.clusters == sequential.clusters}")


if __name__ == "__main__":
    main()
