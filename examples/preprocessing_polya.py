"""Why EST pipelines trim poly-A tails before clustering.

Run:  python examples/preprocessing_polya.py

Mature mRNAs end in a poly-A tail; 3' reads inherit it (as a poly-T
head after reverse complementation).  Tails are shared by *every*
transcript, so to an overlap detector they look like strong evidence
between unrelated genes: the pair generator floods with junk candidates
and, at permissive thresholds, unrelated clusters merge.  This example
measures the damage and shows the trimmer repairing it.
"""

from repro import ClusteringConfig, PaceClusterer
from repro.metrics import assess_clustering
from repro.sequence import EstCollection
from repro.sequence.preprocess import preprocess_est
from repro.simulate import BenchmarkParams, make_benchmark


def main() -> None:
    base = BenchmarkParams.small(n_genes=12, mean_ests_per_gene=9)
    params = BenchmarkParams(
        n_genes=base.n_genes,
        mean_ests_per_gene=base.mean_ests_per_gene,
        read_params=base.read_params,
        n_exons_range=base.n_exons_range,
        exon_len_range=base.exon_len_range,
        polya_tail_length=60,  # every transcript polyadenylated
    )
    bench = make_benchmark(params, rng=31)
    truth = bench.true_clusters()
    config = ClusteringConfig.small_reads()

    print(f"{bench.n_ests} ESTs from {len(bench.genes)} genes, "
          f"40 bp poly-A tails on every transcript\n")

    # --- clustering the raw reads ---------------------------------------
    raw = PaceClusterer(config).cluster(bench.collection)
    raw_q = assess_clustering(raw.clusters, truth, bench.n_ests)
    print("raw reads:")
    print(f"  {raw.summary()}")
    print(f"  quality: {raw_q}")

    # --- trimming first --------------------------------------------------
    cleaned, dropped = [], 0
    total_trimmed = 0
    for i in range(bench.n_ests):
        est, report = preprocess_est(bench.collection.est(i).copy())
        total_trimmed += report.trimmed_start + report.trimmed_end
        if est is None:
            dropped += 1
        else:
            cleaned.append(est)
    print(f"\npreprocessing: trimmed {total_trimmed} tail bases total, "
          f"dropped {dropped} reads")

    trimmed = PaceClusterer(config).cluster(EstCollection(cleaned))
    trim_q = assess_clustering(trimmed.clusters, truth, bench.n_ests)
    print("trimmed reads:")
    print(f"  {trimmed.summary()}")
    print(f"  quality: {trim_q}")

    saved_pairs = raw.counters.pairs_generated - trimmed.counters.pairs_generated
    saved_aligns = raw.counters.pairs_processed - trimmed.counters.pairs_processed
    print(
        f"\ntail trimming removed {saved_pairs} junk promising pairs and "
        f"{saved_aligns} wasted alignments "
        f"({100 * saved_aligns / raw.counters.pairs_processed:.0f}% of all "
        f"alignment work); over-prediction {raw_q.ov:.2f}% -> {trim_q.ov:.2f}%"
    )
    print(
        "(tail-only overlaps are short and mostly fail acceptance — the "
        "min-overlap guard — but each one still costs an alignment, which "
        "is exactly why real pipelines trim first)"
    )


if __name__ == "__main__":
    main()
