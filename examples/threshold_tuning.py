"""Calibrating the acceptance threshold (§4.1's procedure).

Run:  python examples/threshold_tuning.py

The paper chose its quality threshold as the one "experimentally found to
result in the least number of false positives and false negatives",
calibrated against the known Arabidopsis clustering.  This example runs
that procedure on a synthetic calibration set — including paralogous gene
families, the case that actually stresses the threshold: too lax and
paralogs merge (false positives), too strict and error-laden true
overlaps are refused (false negatives).
"""

from repro.core import ClusteringConfig
from repro.core.tuning import tune_acceptance
from repro.simulate import BenchmarkParams, ErrorModel, ReadParams, make_benchmark


def main() -> None:
    params = BenchmarkParams(
        n_genes=10,
        mean_ests_per_gene=9,
        read_params=ReadParams.short_reads(),
        error_model=ErrorModel(0.015, 0.005, 0.005),
        paralog_fraction=0.5,  # half the genes get a 94%-identity paralog
        paralog_divergence=0.06,
        n_exons_range=(1, 3),
        exon_len_range=(80, 200),
    )
    bench = make_benchmark(params, rng=21)
    print(
        f"calibration set: {bench.n_ests} ESTs, {len(bench.genes)} genes "
        f"(incl. paralog pairs), ~2.5% read errors\n"
    )

    config = ClusteringConfig.small_reads()
    result = tune_acceptance(
        bench.collection,
        bench.true_labels,
        config=config,
        ratios=[0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95],
    )

    print(f"{'ratio':>6s} {'FP':>6s} {'FN':>6s} {'FP+FN':>7s} "
          f"{'OQ%':>7s} {'OV%':>7s} {'UN%':>7s} {'CC%':>7s}")
    for point in result.points:
        c = point.report.confusion
        marker = "  <= chosen" if point is result.best else ""
        print(
            f"{point.min_score_ratio:6.2f} {c.fp:6d} {c.fn:6d} "
            f"{point.fp_plus_fn:7d} {point.report.oq:7.2f} "
            f"{point.report.ov:7.2f} {point.report.un:7.2f} "
            f"{point.report.cc:7.2f}{marker}"
        )

    print(
        f"\nselected min_score_ratio = {result.best.min_score_ratio:.2f} "
        f"(the paper's rule: least FP+FN, ties to the stricter side)"
    )
    print(f"usable directly: {result.as_criteria(min_overlap=30)}")


if __name__ == "__main__":
    main()
