"""Detecting alternative splicing inside EST clusters (§3.3 extension).

Run:  python examples/splicing_detection.py

A gene with a short skippable middle exon is expressed as two isoforms;
ESTs from both isoforms cluster together (they overlap cleanly inside the
shared exons), and the splice event shows up as a long internal gap in
the pairwise alignments of junction-spanning reads.  The detector reports
those events — the "additional processing to improve quality" the paper
sketches.
"""

from repro import ClusteringConfig, PaceClusterer, detect_splicing_events
from repro.sequence import EstCollection
from repro.simulate import (
    ErrorModel,
    ReadParams,
    alternative_transcripts,
    primary_transcript,
    sample_gene_ests,
)
from repro.simulate.genes import GeneModel, random_genome
from repro.util.rng import ensure_rng


def main() -> None:
    rng = ensure_rng(2002)

    # A three-exon gene whose middle exon (75 bp) fits inside a read.
    gene = GeneModel(
        gene_id=0,
        exons=(
            random_genome(220, rng).tobytes(),
            random_genome(75, rng).tobytes(),
            random_genome(220, rng).tobytes(),
        ),
        intron_lengths=(150, 150),
        reverse_strand=False,
    )
    isoforms = [primary_transcript(gene)] + alternative_transcripts(
        gene, rng, max_isoforms=1, skip_prob=1.0
    )
    print(
        f"gene with exons {[len(e) for e in gene.exons]}; "
        f"isoform lengths {[t.length for t in isoforms]}"
    )

    reads = sample_gene_ests(
        isoforms,
        36,
        ReadParams(mean_length=170, sd_length=15, min_length=90),
        ErrorModel(0.005, 0.002, 0.002),
        rng,
    )
    collection = EstCollection([r.codes for r in reads])
    iso_of = [r.isoform_id for r in reads]
    print(
        f"sampled {len(reads)} ESTs "
        f"({iso_of.count(0)} full-isoform, {iso_of.count(1)} exon-skipped)"
    )

    result = PaceClusterer(ClusteringConfig.small_reads()).cluster(collection)
    print(f"clustering: {result.summary()}")

    events = detect_splicing_events(
        collection,
        result.clusters,
        min_gap=55,
        min_flank=25,
        max_pairs_per_cluster=1000,
    )
    print(f"\nsplicing events detected: {len(events)}")
    for ev in events[:8]:
        print(
            f"  EST{ev.est_a:03d} vs EST{ev.est_b:03d}: "
            f"{ev.gap_length} bp missing in EST {'a' if ev.gap_in == 'a' else 'b'} "
            f"at ~position {ev.a_position}, "
            f"flank identity {ev.identity_outside_gap:.1%} "
            f"(isoforms {iso_of[ev.est_a]} vs {iso_of[ev.est_b]})"
        )
    correct = sum(1 for ev in events if iso_of[ev.est_a] != iso_of[ev.est_b])
    if events:
        print(f"\n{correct}/{len(events)} events couple reads of different isoforms")


if __name__ == "__main__":
    main()
