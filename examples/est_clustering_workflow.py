"""A realistic EST-clustering workflow, end to end, via FASTA files.

Run:  python examples/est_clustering_workflow.py

Models the workflow the paper's software served: a lab produces EST reads
(here simulated, with errors and both strands), writes them to FASTA,
and the clustering pipeline ingests the file, clusters, and emits one
FASTA per cluster plus a quality report against the CAP3-like comparator
(Table 2 of the paper, in miniature).
"""

import tempfile
from pathlib import Path

from repro import ClusteringConfig, PaceClusterer
from repro.baselines import cap3_like_cluster
from repro.metrics import assess_clustering
from repro.sequence import EstCollection, FastaRecord, read_fasta, write_fasta
from repro.simulate import BenchmarkParams, make_benchmark


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="est_clustering_"))

    # --- the sequencing lab: reads arrive as a FASTA file ----------------
    bench = make_benchmark(
        BenchmarkParams.small(n_genes=12, mean_ests_per_gene=9), rng=7
    )
    est_fa = workdir / "ests.fa"
    write_fasta(
        (
            FastaRecord(f"EST{i:04d}", bench.collection.est_string(i))
            for i in range(bench.n_ests)
        ),
        est_fa,
    )
    print(f"wrote {bench.n_ests} ESTs to {est_fa}")

    # --- the clustering pipeline: FASTA in, clusters out ------------------
    records = read_fasta(est_fa)
    collection = EstCollection.from_records(records)
    config = ClusteringConfig.small_reads()
    result = PaceClusterer(config).cluster(collection)
    print(result.summary())

    for cid, members in enumerate(result.clusters):
        cluster_fa = workdir / f"cluster_{cid:03d}.fa"
        write_fasta(
            (FastaRecord(records[i].name, records[i].sequence) for i in members),
            cluster_fa,
        )
    print(f"wrote {result.n_clusters} cluster FASTA files to {workdir}")

    # --- quality assessment vs the CAP3-like comparator (Table 2) --------
    truth = bench.true_clusters()
    ours = assess_clustering(result.clusters, truth, bench.n_ests)
    cap = cap3_like_cluster(collection, config)
    cap_q = assess_clustering(cap.result.clusters, truth, bench.n_ests)
    print(f"{'':10s}{'OQ':>8s}{'OV':>8s}{'UN':>8s}{'CC':>8s}")
    for name, q in (("PaCE", ours), ("CAP3-like", cap_q)):
        print(f"{name:10s}" + "".join(f"{v:8.2f}" for v in q.as_row()))
    print(
        f"work: PaCE aligned {result.counters.pairs_processed} pairs, "
        f"CAP3-like aligned {cap.result.counters.pairs_processed} "
        f"(and buffered {cap.peak_pairs_buffered} scored overlaps)"
    )


if __name__ == "__main__":
    main()
