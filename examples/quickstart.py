"""Quickstart: cluster a synthetic EST set and score it against truth.

Run:  python examples/quickstart.py

This is the five-minute tour: generate a benchmark with known gene
structure, cluster it with the PaCE pipeline, and compare the result to
the ground truth with the paper's quality metrics (OQ/OV/UN/CC).
"""

from repro import ClusteringConfig, PaceClusterer
from repro.metrics import assess_clustering
from repro.simulate import BenchmarkParams, make_benchmark


def main() -> None:
    # 1. A synthetic benchmark: 15 genes, ~10 ESTs each, 2% sequencing
    #    errors, short-read regime so this runs in a couple of seconds.
    bench = make_benchmark(
        BenchmarkParams.small(n_genes=15, mean_ests_per_gene=10), rng=2024
    )
    print(
        f"dataset: {bench.n_ests} ESTs from {len(bench.genes)} genes, "
        f"{bench.collection.total_chars:,} bases"
    )

    # 2. Cluster.  ClusteringConfig holds every knob of the paper: the
    #    bucket window w, the promising-pair threshold psi, batch sizes,
    #    scoring and acceptance thresholds.
    config = ClusteringConfig.small_reads()
    result = PaceClusterer(config).cluster(bench.collection)
    print(result.summary())

    # 3. Compare against the true clustering (one cluster per gene).
    report = assess_clustering(result.clusters, bench.true_clusters(), bench.n_ests)
    print(f"quality vs ground truth: {report}")

    # 4. The pair-flow counters are the story of the algorithm: most
    #    promising pairs are never aligned because earlier, better pairs
    #    already merged their clusters (Fig. 7 of the paper).
    c = result.counters
    print(
        f"work saved by ordering + cluster test: "
        f"{c.pairs_generated} pairs generated, only {c.pairs_processed} "
        f"aligned ({100 * c.pairs_processed / c.pairs_generated:.1f}%)"
    )


if __name__ == "__main__":
    main()
