"""Incremental clustering of arriving EST batches (the paper's §5 problem).

Run:  python examples/incremental_updates.py

EST databases grow in sequencing batches.  The paper asks whether clusters
can be adjusted incrementally instead of re-clustering from scratch; this
example streams a dataset in four batches through
:class:`repro.IncrementalClusterer` and compares the per-batch alignment
work against the re-cluster-everything strategy, then verifies both end
at the same partition quality.
"""

from repro import ClusteringConfig, IncrementalClusterer, PaceClusterer
from repro.metrics import assess_clustering
from repro.sequence import EstCollection
from repro.simulate import BenchmarkParams, make_benchmark

N_BATCHES = 4


def main() -> None:
    bench = make_benchmark(
        BenchmarkParams.small(n_genes=16, mean_ests_per_gene=10), rng=13
    )
    config = ClusteringConfig.small_reads()
    reads = [bench.collection.est(i).copy() for i in range(bench.n_ests)]
    size = (len(reads) + N_BATCHES - 1) // N_BATCHES
    batches = [reads[i : i + size] for i in range(0, len(reads), size)]

    print(f"{bench.n_ests} ESTs arriving in {len(batches)} batches\n")
    print(f"{'batch':>6s} {'ESTs so far':>12s} {'aligned (incremental)':>22s} "
          f"{'aligned (from scratch)':>23s} {'clusters':>9s}")

    inc = IncrementalClusterer(config)
    seen: list = []
    for b, batch in enumerate(batches):
        seen.extend(batch)
        inc_result = inc.add_batch(batch)
        scratch = PaceClusterer(config).cluster(EstCollection(list(seen)))
        print(
            f"{b:6d} {len(seen):12d} "
            f"{inc_result.counters.pairs_processed:22d} "
            f"{scratch.counters.pairs_processed:23d} "
            f"{len(inc.clusters()):9d}"
        )

    final_scratch = PaceClusterer(config).cluster(bench.collection)
    agreement = assess_clustering(inc.clusters(), final_scratch.clusters, bench.n_ests)
    truth_q = assess_clustering(inc.clusters(), bench.true_clusters(), bench.n_ests)
    print(f"\nincremental vs from-scratch partitions: {agreement}")
    print(f"incremental vs ground truth:            {truth_q}")


if __name__ == "__main__":
    main()
